//! Strict RFC 8259 parser.
//!
//! The parser builds [`ValueRef`]s: strings and object keys borrow the
//! input whenever no escape sequence forces a rewrite, found with one
//! batched scan ([`crate::scan::string_special`]) that simultaneously
//! locates the closing quote and proves the text clean. [`parse`]
//! wraps the same machinery and converts to owned [`Value`]s.

use std::borrow::Cow;
use std::fmt;

use crate::borrow::ValueRef;
use crate::scan;
use crate::value::{Number, Value};

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Result alias for this crate.
pub type JsonResult<T> = Result<T, JsonError>;

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document into an owned [`Value`]; trailing
/// non-whitespace is an error.
pub fn parse(input: &str) -> JsonResult<Value> {
    parse_ref(input).map(ValueRef::into_owned)
}

/// Parse a complete JSON document into a [`ValueRef`] borrowing from
/// `input`; trailing non-whitespace is an error. Escape-free strings
/// are zero-copy slices of the input.
pub fn parse_ref(input: &str) -> JsonResult<ValueRef<'_>> {
    let mut p = Parser { input, bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        self.pos += scan::skip_whitespace(&self.bytes[self.pos..]);
    }

    fn expect(&mut self, b: u8) -> JsonResult<()> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> JsonResult<ValueRef<'a>> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        let out = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(ValueRef::String),
            Some(b't') => self.keyword("true", ValueRef::Bool(true)),
            Some(b'f') => self.keyword("false", ValueRef::Bool(false)),
            Some(b'n') => self.keyword("null", ValueRef::Null),
            Some(b'-' | b'0'..=b'9') => self.number().map(ValueRef::Number),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        };
        self.depth -= 1;
        out
    }

    fn keyword(&mut self, word: &str, value: ValueRef<'a>) -> JsonResult<ValueRef<'a>> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn object(&mut self) -> JsonResult<ValueRef<'a>> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(ValueRef::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(ValueRef::Object(members)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn array(&mut self) -> JsonResult<ValueRef<'a>> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(ValueRef::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(ValueRef::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn string(&mut self) -> JsonResult<Cow<'a, str>> {
        self.expect(b'"')?;
        let start = self.pos;
        // One batched scan: if the first special byte is the closing
        // quote, the whole string is clean and borrows the input.
        let rest = &self.bytes[self.pos..];
        match scan::string_special(rest) {
            Some(p) if rest[p] == b'"' => {
                self.pos += p + 1;
                return Ok(Cow::Borrowed(&self.input[start..start + p]));
            }
            Some(p) => self.pos += p,
            None => self.pos = self.bytes.len(),
        }
        // An escape, control byte, or EOF ahead: build an owned buffer,
        // still copying plain runs wholesale between escapes.
        let mut out = String::with_capacity(self.pos - start + 16);
        out.push_str(&self.input[start..self.pos]);
        loop {
            match self.bump() {
                Some(b'"') => return Ok(Cow::Owned(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pair handling.
                        if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("expected low surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            out.push(char::from_u32(c).ok_or_else(|| self.err("bad codepoint"))?);
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("unpaired low surrogate"));
                        } else {
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?);
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                _ => return Err(self.err("unterminated string")),
            }
            // Copy the next plain run in one go.
            let start = self.pos;
            let rest = &self.bytes[self.pos..];
            match scan::string_special(rest) {
                Some(p) => self.pos += p,
                None => self.pos = self.bytes.len(),
            }
            out.push_str(&self.input[start..self.pos]);
        }
    }

    fn hex4(&mut self) -> JsonResult<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> JsonResult<Number> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: no leading zeros.
        match self.bump() {
            Some(b'0') => {}
            Some(b'1'..=b'9') => {
                self.pos += scan::digit_run(&self.bytes[self.pos..]);
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac = scan::digit_run(&self.bytes[self.pos..]);
            if frac == 0 {
                return Err(self.err("digit required after '.'"));
            }
            self.pos += frac;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp = scan::digit_run(&self.bytes[self.pos..]);
            if exp == 0 {
                return Err(self.err("digit required in exponent"));
            }
            self.pos += exp;
        }
        let text = &self.input[start..self.pos];
        // "-0" must stay a float: Int(0) cannot carry the sign.
        if !is_float && text != "-0" {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Number::Int(i));
            }
        }
        let f: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if !f.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Number::Float(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap().as_i64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.pointer("/a/1/b"), Some(&Value::Null));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(parse(r#""\n\t\"\\\/""#).unwrap().as_str(), Some("\n\t\"\\/"));
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        assert_eq!(parse(r#""中""#).unwrap().as_str(), Some("中"));
    }

    #[test]
    fn surrogate_pairs() {
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert_eq!(parse(r#""\uD83D\uDE00""#).unwrap().as_str(), Some("😀"));
        assert!(parse(r#""\uD83D""#).is_err());
        assert!(parse(r#""\uDE00""#).is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1 2]",
            "01",
            "1.",
            ".5",
            "1e",
            "\"unterminated",
            "tru",
            "nul",
            "{a:1}",
            "[1]]",
            "\"\u{1}\"",
            "+1",
            "NaN",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("1 2").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("  {\"a\":1}  ").is_ok());
    }

    #[test]
    fn deep_nesting_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn big_integers_fall_back_to_float() {
        let v = parse("99999999999999999999").unwrap();
        assert!(v.as_i64().is_none());
        assert!(v.as_f64().unwrap() > 9.9e19);
    }

    #[test]
    fn error_offsets_point_at_problem() {
        let err = parse(r#"{"a": tru}"#).unwrap_err();
        assert_eq!(err.offset, 6);
    }

    #[test]
    fn long_strings_cross_word_boundaries() {
        // Clean and escaped strings longer than the 8-byte scan word.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 64] {
            let body = "x".repeat(len);
            let v = parse(&format!("\"{body}\"")).unwrap();
            assert_eq!(v.as_str(), Some(body.as_str()));
            let v = parse(&format!("\"{body}\\n{body}\"")).unwrap();
            assert_eq!(v.as_str().unwrap(), format!("{body}\n{body}"));
        }
    }
}
