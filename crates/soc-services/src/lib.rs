//! # soc-services — the ASU Repository of Services and Applications
//!
//! Section V of the paper enumerates the services the ASU repository
//! hosts for coursework: *"encryption and decryption services, access
//! control services, random number guessing game services, random
//! string (strong password) generation services, dynamic image
//! generation services, random string image (image verifier) service,
//! caching services, shopping cart services, messaging buffer services,
//! and mortgage application/approval services"*, implemented *"in
//! multiple formats"*. Every one of those is here, as a plain Rust core
//! plus REST and (for the contract-shaped ones) SOAP bindings:
//!
//! | Paper service | Module |
//! |---|---|
//! | encryption/decryption | [`crypto`] |
//! | access control | [`access`] |
//! | number guessing game | [`guessing`] |
//! | strong password generation | [`password`] |
//! | dynamic image generation | [`image`] |
//! | image verifier (captcha) | [`captcha`] |
//! | caching | [`cache`] |
//! | shopping cart | [`cart`] |
//! | messaging buffer | [`buffer`] |
//! | mortgage application/approval (+ credit score) | [`mortgage`] |
//! | hosting + registry catalog | [`bindings`] |
//!
//! [`bindings::host_all`] stands the whole repository up on a
//! [`soc_http::MemNetwork`] and returns the registry descriptors, so
//! directories, crawlers, and workflows can compose against it — the
//! same role `venus.eas.asu.edu/WSRepository/` plays in the paper.

pub mod access;
pub mod bindings;
pub mod buffer;
pub mod cache;
pub mod captcha;
pub mod cart;
pub mod crypto;
pub mod guessing;
pub mod image;
pub mod ledger;
pub mod mortgage;
pub mod password;
