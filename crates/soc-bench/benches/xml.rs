//! XML processing models head to head (CSE445 unit 4): streaming SAX
//! statistics vs DOM construction vs XPath querying vs serialization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use soc_xml::{sax, xpath, Document, XmlEvent, XmlReader};

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(150))
}

fn bench_xml(c: &mut Criterion) {
    let mut group = c.benchmark_group("xml");

    for (label, breadth, depth) in [("small", 4usize, 3usize), ("medium", 6, 4), ("large", 8, 5)] {
        let xml = soc_bench::synthetic_xml(breadth, depth);
        group.throughput(Throughput::Bytes(xml.len() as u64));

        group.bench_with_input(BenchmarkId::new("sax_statistics", label), &xml, |b, xml| {
            b.iter(|| sax::statistics(std::hint::black_box(xml)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dom_parse", label), &xml, |b, xml| {
            b.iter(|| Document::parse_str(std::hint::black_box(xml)).unwrap())
        });
        // Borrowed pull events: the zero-copy floor every model builds on.
        group.bench_with_input(BenchmarkId::new("reader_borrowed", label), &xml, |b, xml| {
            b.iter(|| {
                let mut reader = XmlReader::new(std::hint::black_box(xml));
                let mut text_bytes = 0usize;
                let mut attrs = 0usize;
                loop {
                    match reader.next_event().unwrap() {
                        XmlEvent::StartElement { .. } => attrs += reader.attributes().len(),
                        XmlEvent::Text(t) => text_bytes += t.len(),
                        XmlEvent::EndDocument => break,
                        _ => {}
                    }
                }
                (text_bytes, attrs)
            })
        });
        // Owned events: what the old API allocated on every start tag.
        group.bench_with_input(BenchmarkId::new("reader_owned", label), &xml, |b, xml| {
            b.iter(|| {
                let mut reader = XmlReader::new(std::hint::black_box(xml));
                let mut events = 0usize;
                loop {
                    if matches!(reader.next_owned().unwrap(), soc_xml::OwnedEvent::EndDocument) {
                        break;
                    }
                    events += 1;
                }
                events
            })
        });

        let doc = Document::parse_str(&xml).unwrap();
        group.bench_with_input(BenchmarkId::new("xpath_descendants", label), &doc, |b, doc| {
            b.iter(|| xpath::eval("//n1[@id]", std::hint::black_box(doc)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("serialize", label), &doc, |b, doc| {
            b.iter(|| std::hint::black_box(doc).to_xml())
        });
        // Serialization into one reused buffer: amortizes the allocation
        // away entirely after the first iteration.
        group.bench_with_input(BenchmarkId::new("serialize_reuse", label), &doc, |b, doc| {
            let mut buf = String::new();
            b.iter(|| {
                buf.clear();
                std::hint::black_box(doc).write_xml_into(&mut buf);
                buf.len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_xml
}
criterion_main!(benches);
