//! The bounded producer/consumer buffer — unit 2's classic example, and
//! the engine behind the "messaging buffer service" in the ASU service
//! repository (Section V of the paper).

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// A blocking bounded FIFO for multiple producers and consumers.
///
/// Built as two condition variables over one mutex-protected deque:
/// `not_full` gates producers, `not_empty` gates consumers. Closing the
/// buffer wakes everyone; consumers drain remaining items, producers get
/// their item back via `Err`.
pub struct BoundedBuffer<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

struct Inner<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// Why a buffer operation did not complete.
#[derive(Debug, PartialEq, Eq)]
pub enum BufferError<T> {
    /// The buffer was closed; for `put`, the rejected item is returned.
    Closed(T),
    /// The timeout elapsed; for `put`, the item is returned.
    Timeout(T),
}

impl<T> BoundedBuffer<T> {
    /// Create with a fixed capacity (must be nonzero).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        BoundedBuffer {
            inner: Mutex::new(Inner { queue: VecDeque::with_capacity(capacity), closed: false }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Capacity the buffer was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue length (racy; monitoring only).
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True when currently empty (racy; monitoring only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Block until space is available, then enqueue. Fails only when the
    /// buffer is closed.
    pub fn put(&self, item: T) -> Result<(), BufferError<T>> {
        let mut inner = self.inner.lock();
        loop {
            if inner.closed {
                return Err(BufferError::Closed(item));
            }
            if inner.queue.len() < self.capacity {
                inner.queue.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            self.not_full.wait(&mut inner);
        }
    }

    /// `put` with a deadline.
    pub fn put_timeout(&self, item: T, timeout: Duration) -> Result<(), BufferError<T>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if inner.closed {
                return Err(BufferError::Closed(item));
            }
            if inner.queue.len() < self.capacity {
                inner.queue.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            if self.not_full.wait_until(&mut inner, deadline).timed_out() {
                return Err(BufferError::Timeout(item));
            }
        }
    }

    /// Enqueue only if space is available right now.
    pub fn try_put(&self, item: T) -> Result<(), BufferError<T>> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(BufferError::Closed(item));
        }
        if inner.queue.len() < self.capacity {
            inner.queue.push_back(item);
            drop(inner);
            self.not_empty.notify_one();
            Ok(())
        } else {
            Err(BufferError::Timeout(item))
        }
    }

    /// Block until an item is available. Returns `None` once the buffer
    /// is closed *and* drained.
    pub fn take(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(item) = inner.queue.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            self.not_empty.wait(&mut inner);
        }
    }

    /// `take` with a deadline; `Ok(None)` means closed-and-drained,
    /// `Err(())` means the timeout elapsed (the only failure mode, so
    /// the unit error is deliberate).
    #[allow(clippy::result_unit_err)]
    pub fn take_timeout(&self, timeout: Duration) -> Result<Option<T>, ()> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if let Some(item) = inner.queue.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Ok(Some(item));
            }
            if inner.closed {
                return Ok(None);
            }
            if self.not_empty.wait_until(&mut inner, deadline).timed_out() {
                return Err(());
            }
        }
    }

    /// Dequeue only if an item is available right now.
    pub fn try_take(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        let item = inner.queue.pop_front();
        if item.is_some() {
            drop(inner);
            self.not_full.notify_one();
        }
        item
    }

    /// Close the buffer: producers fail, consumers drain then get `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        drop(inner);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Has the buffer been closed?
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order() {
        let b = BoundedBuffer::new(4);
        for i in 0..4 {
            b.put(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(b.take(), Some(i));
        }
    }

    #[test]
    fn try_put_respects_capacity() {
        let b = BoundedBuffer::new(1);
        assert!(b.try_put(1).is_ok());
        assert!(matches!(b.try_put(2), Err(BufferError::Timeout(2))));
        assert_eq!(b.try_take(), Some(1));
        assert!(b.try_put(2).is_ok());
    }

    #[test]
    fn put_timeout_returns_item() {
        let b = BoundedBuffer::new(1);
        b.put("a").unwrap();
        match b.put_timeout("b", Duration::from_millis(10)) {
            Err(BufferError::Timeout(x)) => assert_eq!(x, "b"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn close_rejects_producers_and_drains_consumers() {
        let b = BoundedBuffer::new(4);
        b.put(1).unwrap();
        b.put(2).unwrap();
        b.close();
        assert!(matches!(b.put(3), Err(BufferError::Closed(3))));
        assert_eq!(b.take(), Some(1));
        assert_eq!(b.take(), Some(2));
        assert_eq!(b.take(), None);
    }

    #[test]
    fn producers_and_consumers_transfer_everything() {
        const PRODUCERS: usize = 3;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: usize = 500;
        let b = Arc::new(BoundedBuffer::new(8));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let b = b.clone();
            handles.push(thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    b.put(p * PER_PRODUCER + i).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..CONSUMERS {
            let b = b.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = b.take() {
                    got.push(v);
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        b.close();
        let mut all: Vec<usize> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let expect: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn blocked_consumer_wakes_on_put() {
        let b = Arc::new(BoundedBuffer::new(2));
        let b2 = b.clone();
        let t = thread::spawn(move || b2.take());
        thread::sleep(Duration::from_millis(10));
        b.put(99).unwrap();
        assert_eq!(t.join().unwrap(), Some(99));
    }

    #[test]
    fn take_timeout_expires() {
        let b: BoundedBuffer<u8> = BoundedBuffer::new(1);
        assert_eq!(b.take_timeout(Duration::from_millis(10)), Err(()));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: BoundedBuffer<u8> = BoundedBuffer::new(0);
    }
}
