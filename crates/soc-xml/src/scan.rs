//! Batched byte scanning — the reader's inner loops, 8 bytes at a time.
//!
//! Every hot loop in [`crate::reader`] and [`crate::escape`] reduces to
//! the same primitive: *find the next byte of interest*. This module
//! implements that primitive SWAR-style (SIMD Within A Register): load
//! 8 bytes into a `u64`, turn "lane equals needle" into the lane's high
//! bit with carry-free arithmetic, and locate the first set high bit
//! with `trailing_zeros`. A scalar loop handles the sub-word tail.
//!
//! Correctness notes, because SWAR lane tricks are where parsers grow
//! silent bugs:
//!
//! - Words are loaded with [`u64::from_le_bytes`], so lane *k* of the
//!   word is byte *i + k* of the haystack and `trailing_zeros() / 8`
//!   is the first matching index on any host endianness.
//! - [`zero_lanes`] is the *exact* per-lane formula (mask to 7 bits
//!   before adding so carries cannot cross lanes), not the classic
//!   `haszero` approximation that admits false positives above a true
//!   match. Exactness is what lets [`skip_whitespace`] test "all 8
//!   lanes are whitespace" and skip the whole word.
//! - Multi-byte UTF-8 sequences are just opaque `>= 0x80` bytes here:
//!   every needle is ASCII, and an ASCII byte never occurs inside a
//!   multi-byte UTF-8 sequence, so byte-level scanning is safe on
//!   `str` content and slicing at a match index keeps UTF-8 boundaries.
//!
//! Each public finder has a naive byte-loop twin in [`naive`]; the
//! differential suite in `tests/scan_differential.rs` drives both over
//! adversarial inputs (interest byte in every lane position, multi-byte
//! UTF-8 straddling word boundaries, bytes `>= 0x80`).

/// Low bit of every lane: `0x01` broadcast across the word.
const LO: u64 = 0x0101_0101_0101_0101;
/// High bit of every lane: `0x80` broadcast across the word.
const HI: u64 = 0x8080_8080_8080_8080;

/// `b` copied into all 8 lanes.
#[inline(always)]
const fn broadcast(b: u8) -> u64 {
    (b as u64) * LO
}

/// Load 8 bytes as a little-endian word, so lane order equals byte
/// order and `trailing_zeros` walks the haystack front to back.
#[inline(always)]
fn load(haystack: &[u8], at: usize) -> u64 {
    let chunk: [u8; 8] = haystack[at..at + 8].try_into().unwrap();
    u64::from_le_bytes(chunk)
}

/// High bit of each lane set **iff** that lane's byte is zero. Exact:
/// the low 7 bits are isolated before the add, so no carry can cross a
/// lane boundary and no lane can report a neighbour's zero.
#[inline(always)]
const fn zero_lanes(v: u64) -> u64 {
    !(((v & !HI) + !HI) | v) & HI
}

/// High bit of each lane set iff that lane's byte equals `needle`.
#[inline(always)]
const fn eq_lanes(v: u64, needle: u8) -> u64 {
    zero_lanes(v ^ broadcast(needle))
}

/// Index of the first set high-bit lane in `mask` (which must be
/// non-zero), as a byte offset within the word.
#[inline(always)]
const fn first_lane(mask: u64) -> usize {
    (mask.trailing_zeros() / 8) as usize
}

/// Find the first occurrence of `needle` in `haystack` (memchr).
#[inline]
pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    let mut i = 0;
    while i + 8 <= haystack.len() {
        let mask = eq_lanes(load(haystack, i), needle);
        if mask != 0 {
            return Some(i + first_lane(mask));
        }
        i += 8;
    }
    haystack[i..].iter().position(|&b| b == needle).map(|p| i + p)
}

/// Find the first occurrence of `a` or `b` (memchr2).
#[inline]
pub fn find_byte2(haystack: &[u8], a: u8, b: u8) -> Option<usize> {
    let mut i = 0;
    while i + 8 <= haystack.len() {
        let w = load(haystack, i);
        let mask = eq_lanes(w, a) | eq_lanes(w, b);
        if mask != 0 {
            return Some(i + first_lane(mask));
        }
        i += 8;
    }
    haystack[i..].iter().position(|&x| x == a || x == b).map(|p| i + p)
}

/// Find the first occurrence of `a`, `b`, or `c` (memchr3).
#[inline]
pub fn find_byte3(haystack: &[u8], a: u8, b: u8, c: u8) -> Option<usize> {
    let mut i = 0;
    while i + 8 <= haystack.len() {
        let w = load(haystack, i);
        let mask = eq_lanes(w, a) | eq_lanes(w, b) | eq_lanes(w, c);
        if mask != 0 {
            return Some(i + first_lane(mask));
        }
        i += 8;
    }
    haystack[i..].iter().position(|&x| x == a || x == b || x == c).map(|p| i + p)
}

/// Find the first byte that is any of `needles` (at most 8 of them —
/// enough for the attribute-escape set). With a constant needle slice
/// the inner loop unrolls into straight-line lane arithmetic.
#[inline]
pub fn find_any(haystack: &[u8], needles: &[u8]) -> Option<usize> {
    debug_assert!(needles.len() <= 8, "find_any is tuned for small needle sets");
    let mut i = 0;
    while i + 8 <= haystack.len() {
        let w = load(haystack, i);
        let mut mask = 0u64;
        for &n in needles {
            mask |= eq_lanes(w, n);
        }
        if mask != 0 {
            return Some(i + first_lane(mask));
        }
        i += 8;
    }
    haystack[i..].iter().position(|b| needles.contains(b)).map(|p| i + p)
}

/// Find the first occurrence of `needle` as a substring: memchr on the
/// first byte, verify the rest. The reader's `take_until` delimiters
/// (`?>`, `-->`, `]]>`) are short and rare, so the verify step almost
/// never runs.
#[inline]
pub fn find_substr(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    let (&first, rest) = needle.split_first()?;
    let mut i = 0;
    while i < haystack.len() {
        let at = i + find_byte(&haystack[i..], first)?;
        let tail = &haystack[at + 1..];
        if tail.len() >= rest.len() && &tail[..rest.len()] == rest {
            return Some(at);
        }
        i = at + 1;
    }
    None
}

/// Count occurrences of `needle` — one popcount per 8 bytes. Feeds
/// lazy line-number materialization ([`crate::error::Position::locate`]):
/// the reader tracks only byte offsets on the hot path and pays for
/// line/column exactly once, when an error is actually constructed.
#[inline]
pub fn count_byte(haystack: &[u8], needle: u8) -> usize {
    let mut i = 0;
    let mut n = 0;
    while i + 8 <= haystack.len() {
        n += eq_lanes(load(haystack, i), needle).count_ones() as usize;
        i += 8;
    }
    n + haystack[i..].iter().filter(|&&b| b == needle).count()
}

/// Find the last occurrence of `needle` (memrchr): whole words from the
/// back, `63 - leading_zeros` picking the highest matching lane.
#[inline]
pub fn rfind_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    let mut end = haystack.len();
    let head = end % 8;
    if let Some(p) = haystack[end - head..].iter().rposition(|&b| b == needle) {
        return Some(end - head + p);
    }
    end -= head;
    while end >= 8 {
        let mask = eq_lanes(load(haystack, end - 8), needle);
        if mask != 0 {
            return Some(end - 8 + (63 - mask.leading_zeros() as usize) / 8);
        }
        end -= 8;
    }
    None
}

/// Number of leading bytes of `haystack` that are XML whitespace
/// (space, tab, CR, LF). Whole words of whitespace are skipped 8 bytes
/// per iteration; the first word containing a non-whitespace lane is
/// resolved with lane arithmetic.
#[inline]
pub fn skip_whitespace(haystack: &[u8]) -> usize {
    // Dense markup rarely has leading whitespace at all; bail before
    // the word loop spins up.
    if !haystack.first().is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n')) {
        return 0;
    }
    let mut i = 1;
    while i + 8 <= haystack.len() {
        let w = load(haystack, i);
        let ws = eq_lanes(w, b' ') | eq_lanes(w, b'\t') | eq_lanes(w, b'\r') | eq_lanes(w, b'\n');
        if ws == HI {
            i += 8;
            continue;
        }
        return i + first_lane(!ws & HI);
    }
    while i < haystack.len() && matches!(haystack[i], b' ' | b'\t' | b'\r' | b'\n') {
        i += 1;
    }
    i
}

/// Byte-at-a-time oracles with the same signatures as the SWAR finders.
/// These are the *specification*: the differential tests assert the
/// batched implementations agree with them on every input.
pub mod naive {
    /// Oracle twin of [`super::find_byte`].
    pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
        haystack.iter().position(|&b| b == needle)
    }

    /// Oracle twin of [`super::find_byte2`].
    pub fn find_byte2(haystack: &[u8], a: u8, b: u8) -> Option<usize> {
        haystack.iter().position(|&x| x == a || x == b)
    }

    /// Oracle twin of [`super::find_byte3`].
    pub fn find_byte3(haystack: &[u8], a: u8, b: u8, c: u8) -> Option<usize> {
        haystack.iter().position(|&x| x == a || x == b || x == c)
    }

    /// Oracle twin of [`super::find_any`].
    pub fn find_any(haystack: &[u8], needles: &[u8]) -> Option<usize> {
        haystack.iter().position(|b| needles.contains(b))
    }

    /// Oracle twin of [`super::find_substr`].
    pub fn find_substr(haystack: &[u8], needle: &[u8]) -> Option<usize> {
        if needle.is_empty() {
            return None;
        }
        if haystack.len() < needle.len() {
            return None;
        }
        (0..=haystack.len() - needle.len()).find(|&i| &haystack[i..i + needle.len()] == needle)
    }

    /// Oracle twin of [`super::count_byte`].
    pub fn count_byte(haystack: &[u8], needle: u8) -> usize {
        haystack.iter().filter(|&&b| b == needle).count()
    }

    /// Oracle twin of [`super::rfind_byte`].
    pub fn rfind_byte(haystack: &[u8], needle: u8) -> Option<usize> {
        haystack.iter().rposition(|&b| b == needle)
    }

    /// Oracle twin of [`super::skip_whitespace`].
    pub fn skip_whitespace(haystack: &[u8]) -> usize {
        haystack
            .iter()
            .position(|b| !matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
            .unwrap_or(haystack.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_needle_in_every_lane_position() {
        for lane in 0..24 {
            let mut buf = vec![b'a'; 24];
            buf[lane] = b'<';
            assert_eq!(find_byte(&buf, b'<'), Some(lane), "lane {lane}");
        }
    }

    #[test]
    fn no_match_returns_none() {
        assert_eq!(find_byte(b"abcdefghijklmnop", b'<'), None);
        assert_eq!(find_byte(b"", b'<'), None);
        assert_eq!(find_byte2(b"xyz", b'<', b'&'), None);
    }

    #[test]
    fn sub_word_tails_are_scanned() {
        assert_eq!(find_byte(b"abc<", b'<'), Some(3));
        assert_eq!(find_byte(b"abcdefgh012<", b'<'), Some(11));
    }

    #[test]
    fn earliest_of_multiple_needles_wins() {
        assert_eq!(find_byte2(b"xx&yy<zz", b'<', b'&'), Some(2));
        assert_eq!(find_byte3(b"ab]cd&ef<", b'<', b'&', b']'), Some(2));
        assert_eq!(find_any(b"ab\tcd\"e", b"\"\t\n"), Some(2));
    }

    #[test]
    fn high_bytes_never_match_ascii_needles() {
        // 0x80..0xFF bytes (UTF-8 continuation range) must not alias
        // into any ASCII needle under the lane arithmetic.
        let buf: Vec<u8> = (0x80..=0xFFu8).collect();
        assert_eq!(find_byte(&buf, b'<'), None);
        assert_eq!(find_any(&buf, b"<>&\"'\n\t"), None);
        assert_eq!(skip_whitespace(&buf), 0);
    }

    #[test]
    fn substr_finds_delimiters() {
        assert_eq!(find_substr(b"data?>rest", b"?>"), Some(4));
        assert_eq!(find_substr(b"a--b-->c", b"-->"), Some(4));
        assert_eq!(find_substr(b"]]x]]>", b"]]>"), Some(3));
        assert_eq!(find_substr(b"no delim", b"?>"), None);
        // Overlapping candidate prefixes must not desync the scan.
        assert_eq!(find_substr(b"-- -- -->", b"-->"), Some(6));
    }

    #[test]
    fn whitespace_runs_longer_than_a_word() {
        let mut buf = vec![b' '; 20];
        buf.extend_from_slice(b"<x/>");
        assert_eq!(skip_whitespace(&buf), 20);
        assert_eq!(skip_whitespace(b"  \t\r\n  x"), 7);
        assert_eq!(skip_whitespace(b"x"), 0);
        assert_eq!(skip_whitespace(b"        "), 8);
    }

    #[test]
    fn count_and_rfind_cover_word_and_tail() {
        let buf = b"a\nbb\ncccc\ndddddddd\ne";
        assert_eq!(count_byte(buf, b'\n'), 4);
        assert_eq!(rfind_byte(buf, b'\n'), Some(18));
        assert_eq!(rfind_byte(buf, b'z'), None);
        assert_eq!(rfind_byte(b"", b'\n'), None);
        for lane in 0..24 {
            let mut v = vec![b'a'; 24];
            v[lane] = b'\n';
            assert_eq!(rfind_byte(&v, b'\n'), Some(lane), "lane {lane}");
            assert_eq!(count_byte(&v, b'\n'), 1);
        }
    }

    #[test]
    fn zero_lanes_is_exact_per_lane() {
        // 0x0100 is the classic haszero false positive: the borrow out
        // of the low lane must not mark the 0x01 lane as zero.
        let w = u64::from_le_bytes([0x00, 0x01, 0x80, 0xFF, 0x00, 0x7F, 0x01, 0x00]);
        let mask = zero_lanes(w);
        for lane in 0..8 {
            let expect = w.to_le_bytes()[lane] == 0;
            assert_eq!(mask & (0x80 << (lane * 8)) != 0, expect, "lane {lane}");
        }
    }
}
