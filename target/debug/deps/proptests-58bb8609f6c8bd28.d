/root/repo/target/debug/deps/proptests-58bb8609f6c8bd28.d: crates/soc-registry/tests/proptests.rs

/root/repo/target/debug/deps/proptests-58bb8609f6c8bd28: crates/soc-registry/tests/proptests.rs

crates/soc-registry/tests/proptests.rs:
