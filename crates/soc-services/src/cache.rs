//! The caching service: bounded LRU with TTL on a logical clock, plus
//! hit/miss statistics — the unit-5 topic "caching support to Web
//! application state management", and a dependency the paper's Table 2
//! calls out ("define data dependencies in Web caching applications").

use std::collections::HashMap;

use parking_lot::Mutex;

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed (absent or expired).
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Entries dropped because their TTL lapsed.
    pub expirations: u64,
}

impl CacheStats {
    /// Hit ratio in [0, 1] (0 when no lookups yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    value: String,
    expires_at: u64,
    /// LRU ordering stamp.
    last_used: u64,
}

/// A bounded TTL+LRU cache keyed by string. Time is a logical tick
/// supplied by the caller (deterministic tests/benches); the LRU stamp
/// is an internal monotone counter so recency is exact even when many
/// operations share a tick.
pub struct CacheService {
    inner: Mutex<CacheInner>,
    capacity: usize,
    default_ttl: u64,
}

struct CacheInner {
    map: HashMap<String, Entry>,
    stats: CacheStats,
    use_counter: u64,
}

impl CacheService {
    /// Cache with `capacity` entries and a default TTL in ticks.
    pub fn new(capacity: usize, default_ttl: u64) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        CacheService {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                stats: CacheStats::default(),
                use_counter: 0,
            }),
            capacity,
            default_ttl,
        }
    }

    /// Insert with the default TTL.
    pub fn put(&self, key: &str, value: &str, now: u64) {
        self.put_ttl(key, value, now, self.default_ttl);
    }

    /// Insert with an explicit TTL.
    pub fn put_ttl(&self, key: &str, value: &str, now: u64, ttl: u64) {
        let mut inner = self.inner.lock();
        inner.use_counter += 1;
        let stamp = inner.use_counter;
        if !inner.map.contains_key(key) && inner.map.len() >= self.capacity {
            // Evict the least-recently-used live entry (expired ones
            // first, for free).
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| (e.expires_at > now, e.last_used))
                .map(|(k, e)| (k.clone(), e.expires_at <= now));
            if let Some((k, was_expired)) = victim {
                inner.map.remove(&k);
                if was_expired {
                    inner.stats.expirations += 1;
                } else {
                    inner.stats.evictions += 1;
                }
            }
        }
        inner.map.insert(
            key.to_string(),
            Entry {
                value: value.to_string(),
                expires_at: now.saturating_add(ttl),
                last_used: stamp,
            },
        );
    }

    /// Look up a key at logical time `now`.
    pub fn get(&self, key: &str, now: u64) -> Option<String> {
        let mut inner = self.inner.lock();
        inner.use_counter += 1;
        let stamp = inner.use_counter;
        match inner.map.get_mut(key) {
            Some(entry) if entry.expires_at > now => {
                entry.last_used = stamp;
                let value = entry.value.clone();
                inner.stats.hits += 1;
                Some(value)
            }
            Some(_) => {
                inner.map.remove(key);
                inner.stats.expirations += 1;
                inner.stats.misses += 1;
                None
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Read-through helper: get, or compute-and-store on miss.
    pub fn get_or_compute(&self, key: &str, now: u64, compute: impl FnOnce() -> String) -> String {
        if let Some(v) = self.get(key, now) {
            return v;
        }
        let v = compute();
        self.put(key, &v, now);
        v
    }

    /// Remove a key; `true` if it was present (live or expired).
    pub fn invalidate(&self, key: &str) -> bool {
        self.inner.lock().map.remove(key).is_some()
    }

    /// Number of stored entries (may include expired, not yet collected).
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let c = CacheService::new(4, 100);
        c.put("k", "v", 0);
        assert_eq!(c.get("k", 10).as_deref(), Some("v"));
        assert_eq!(c.get("absent", 10), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn entries_expire() {
        let c = CacheService::new(4, 50);
        c.put("k", "v", 0);
        assert!(c.get("k", 49).is_some());
        assert!(c.get("k", 50).is_none());
        assert_eq!(c.stats().expirations, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let c = CacheService::new(2, 1000);
        c.put("a", "1", 0);
        c.put("b", "2", 0);
        c.get("a", 1); // refresh a
        c.put("c", "3", 2); // evicts b
        assert!(c.get("a", 3).is_some());
        assert!(c.get("b", 3).is_none());
        assert!(c.get("c", 3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn expired_entries_evicted_before_live_ones() {
        let c = CacheService::new(2, 10);
        c.put("old", "x", 0); // expires at 10
        c.put_ttl("live", "y", 50, 100);
        c.put("new", "z", 60); // should evict "old" (expired), not "live"
        assert!(c.get("live", 61).is_some());
        assert!(c.get("new", 61).is_some());
        assert_eq!(c.stats().expirations, 1);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn overwrite_does_not_evict() {
        let c = CacheService::new(2, 100);
        c.put("a", "1", 0);
        c.put("b", "2", 0);
        c.put("a", "updated", 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a", 2).as_deref(), Some("updated"));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn read_through_computes_once() {
        let c = CacheService::new(4, 100);
        let mut calls = 0;
        let v1 = c.get_or_compute("k", 0, || {
            calls += 1;
            "computed".into()
        });
        let v2 = c.get_or_compute("k", 1, || {
            calls += 1;
            "recomputed".into()
        });
        assert_eq!(v1, "computed");
        assert_eq!(v2, "computed");
        assert_eq!(calls, 1);
    }

    #[test]
    fn invalidate_removes() {
        let c = CacheService::new(4, 100);
        c.put("k", "v", 0);
        assert!(c.invalidate("k"));
        assert!(!c.invalidate("k"));
        assert!(c.get("k", 1).is_none());
    }

    #[test]
    fn hit_ratio() {
        let c = CacheService::new(4, 100);
        assert_eq!(c.stats().hit_ratio(), 0.0);
        c.put("k", "v", 0);
        c.get("k", 1);
        c.get("k", 1);
        c.get("missing", 1);
        assert!((c.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = CacheService::new(0, 10);
    }
}
