/root/repo/target/debug/deps/soc_webapp-f9ba0dd84e8737f1.d: crates/soc-webapp/src/lib.rs crates/soc-webapp/src/account_app.rs crates/soc-webapp/src/session.rs crates/soc-webapp/src/templates.rs crates/soc-webapp/src/viewstate.rs

/root/repo/target/debug/deps/libsoc_webapp-f9ba0dd84e8737f1.rlib: crates/soc-webapp/src/lib.rs crates/soc-webapp/src/account_app.rs crates/soc-webapp/src/session.rs crates/soc-webapp/src/templates.rs crates/soc-webapp/src/viewstate.rs

/root/repo/target/debug/deps/libsoc_webapp-f9ba0dd84e8737f1.rmeta: crates/soc-webapp/src/lib.rs crates/soc-webapp/src/account_app.rs crates/soc-webapp/src/session.rs crates/soc-webapp/src/templates.rs crates/soc-webapp/src/viewstate.rs

crates/soc-webapp/src/lib.rs:
crates/soc-webapp/src/account_app.rs:
crates/soc-webapp/src/session.rs:
crates/soc-webapp/src/templates.rs:
crates/soc-webapp/src/viewstate.rs:
