/root/repo/target/debug/examples/service_marketplace-f923cc652413f89d.d: examples/service_marketplace.rs

/root/repo/target/debug/examples/service_marketplace-f923cc652413f89d: examples/service_marketplace.rs

examples/service_marketplace.rs:
