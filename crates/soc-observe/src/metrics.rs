//! The unified metrics registry: counters, gauges, and fixed-bucket
//! histograms registered by name + labels, rendered as Prometheus-style
//! exposition text.
//!
//! Handles are cheap clones over shared atomics — register once, then
//! record lock-free on the hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use crate::context::TraceId;

/// Histogram bucket upper bounds, in microseconds — the service-latency
/// buckets previously private to `soc-gateway`. Observations above the
/// last bound land in an implicit overflow bucket.
pub const LATENCY_BUCKETS_US: [u64; 12] =
    [100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 500_000, 1_000_000];

/// A monotonically increasing counter. Clones share the same cell.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A detached counter (not registered anywhere).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down. Clones share the cell.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A detached gauge (not registered anywhere).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram. Lock-free on the record path.
///
/// The default buckets are [`LATENCY_BUCKETS_US`] and the API speaks
/// microseconds (`record`, `mean_us`, `quantile_us`) because latency is
/// the dominant use, but [`Histogram::observe`] accepts any `u64`
/// against custom bounds.
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
    // One slot per bucket (overflow last): the most recent observation
    // made while a trace context was active, as `(trace_id, value)`.
    // Updated with `try_lock` so a contended slot drops the exemplar
    // rather than stalling the record path.
    exemplars: Vec<Mutex<Option<(TraceId, u64)>>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram over [`LATENCY_BUCKETS_US`].
    pub fn new() -> Histogram {
        Histogram::with_bounds(&LATENCY_BUCKETS_US)
    }

    /// An empty histogram over custom ascending upper bounds (plus an
    /// implicit overflow bucket). Bounds are sorted and deduplicated;
    /// an empty slice falls back to [`LATENCY_BUCKETS_US`].
    pub fn with_bounds(bounds: &[u64]) -> Histogram {
        let mut bounds: Vec<u64> =
            if bounds.is_empty() { LATENCY_BUCKETS_US.to_vec() } else { bounds.to_vec() };
        bounds.sort_unstable();
        bounds.dedup();
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        let exemplars = (0..bounds.len() + 1).map(|_| Mutex::new(None)).collect();
        Histogram { bounds, counts, total: AtomicU64::new(0), sum: AtomicU64::new(0), exemplars }
    }

    /// Record one latency observation (converted to microseconds).
    pub fn record(&self, latency: Duration) {
        self.observe(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record one raw observation. When a trace context is active on
    /// this thread, the bucket also remembers `(trace_id, value)` as
    /// its exemplar, linking the aggregate to one concrete trace.
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.iter().position(|&bound| value <= bound).unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        if let Some(ctx) = crate::context::current() {
            if let Some(mut slot) = self.exemplars[idx].try_lock() {
                *slot = Some((ctx.trace_id, value));
            }
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile, or
    /// `None` when empty. The overflow bucket reports the last bound —
    /// "at least this slow".
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(*self.bounds.get(i).unwrap_or(self.bounds.last()?));
            }
        }
        self.bounds.last().copied()
    }

    /// `(upper_bound, count)` pairs for the non-empty buckets; the
    /// overflow bucket reports `None` as its bound.
    pub fn buckets(&self) -> Vec<(Option<u64>, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                if n == 0 {
                    None
                } else {
                    Some((self.bounds.get(i).copied(), n))
                }
            })
            .collect()
    }

    /// The configured upper bounds (excluding the overflow bucket).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Cumulative `(upper_bound, count)` pairs over every bucket,
    /// overflow last — the shape Prometheus `_bucket{le=...}` wants.
    pub fn cumulative_buckets(&self) -> Vec<(Option<u64>, u64)> {
        let mut acc = 0u64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, c)| {
                acc += c.load(Ordering::Relaxed);
                (self.bounds.get(i).copied(), acc)
            })
            .collect()
    }

    /// Per-bucket exemplars (overflow last): the most recent
    /// `(trace_id, observed value)` seen under an active trace context,
    /// `None` for buckets that never were.
    pub fn exemplars(&self) -> Vec<Option<(TraceId, u64)>> {
        self.exemplars.iter().map(|slot| *slot.lock()).collect()
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    label_text: String,
    metric: Metric,
}

/// Metrics registered by `(name, labels)`, rendered in Prometheus text
/// exposition format by [`MetricsRegistry::render_prometheus`].
#[derive(Default)]
pub struct MetricsRegistry {
    // name → (serialized labels → entry); BTreeMaps keep render output
    // deterministic.
    inner: RwLock<BTreeMap<String, BTreeMap<String, Entry>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter `name{labels}`, created on first use.
    ///
    /// # Panics
    /// If `name{labels}` is already registered as a different type.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => mismatch(name, "counter", other.kind()),
        }
    }

    /// The gauge `name{labels}`, created on first use.
    ///
    /// # Panics
    /// If `name{labels}` is already registered as a different type.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => mismatch(name, "gauge", other.kind()),
        }
    }

    /// The latency histogram `name{labels}` over
    /// [`LATENCY_BUCKETS_US`], created on first use.
    ///
    /// # Panics
    /// If `name{labels}` is already registered as a different type.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_with_bounds(name, labels, &LATENCY_BUCKETS_US)
    }

    /// The histogram `name{labels}` over custom bounds, created on
    /// first use (existing histograms keep their original bounds).
    ///
    /// # Panics
    /// If `name{labels}` is already registered as a different type.
    pub fn histogram_with_bounds(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Arc<Histogram> {
        match self.get_or_insert(name, labels, || {
            Metric::Histogram(Arc::new(Histogram::with_bounds(bounds)))
        }) {
            Metric::Histogram(h) => h,
            other => mismatch(name, "histogram", other.kind()),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let label_text = render_labels(labels);
        if let Some(family) = self.inner.read().get(name) {
            if let Some(e) = family.get(&label_text) {
                return clone_metric(&e.metric);
            }
        }
        let mut inner = self.inner.write();
        let family = inner.entry(name.to_string()).or_default();
        let entry = family
            .entry(label_text.clone())
            .or_insert_with(|| Entry { label_text, metric: make() });
        clone_metric(&entry.metric)
    }

    /// Number of registered metric series.
    pub fn len(&self) -> usize {
        self.inner.read().values().map(|f| f.len()).sum()
    }

    /// Whether no metric is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render every registered metric as Prometheus text exposition
    /// format (`# TYPE` lines, `_bucket{le=...}`/`_sum`/`_count`
    /// expansion for histograms).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        self.render_prometheus_into(&mut out);
        out
    }

    /// Append the Prometheus text exposition to `out`, reusing the
    /// caller's buffer — a scrape loop renders into one allocation
    /// instead of building a fresh `String` per scrape.
    pub fn render_prometheus_into(&self, out: &mut String) {
        let inner = self.inner.read();
        for (name, family) in inner.iter() {
            let Some(first) = family.values().next() else { continue };
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(first.metric.kind());
            out.push('\n');
            for entry in family.values() {
                render_entry(out, name, entry);
            }
        }
    }
}

fn clone_metric(m: &Metric) -> Metric {
    match m {
        Metric::Counter(c) => Metric::Counter(c.clone()),
        Metric::Gauge(g) => Metric::Gauge(g.clone()),
        Metric::Histogram(h) => Metric::Histogram(h.clone()),
    }
}

fn mismatch(name: &str, wanted: &str, found: &str) -> ! {
    panic!("metric {name:?} already registered as a {found}, requested as a {wanted}")
}

/// Serialize labels as `k1="v1",k2="v2"` (sorted by key, values
/// escaped) — both the registry key and the render form.
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut labels: Vec<(&str, &str)> = labels.to_vec();
    labels.sort_by_key(|(k, _)| *k);
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

fn write_sample(out: &mut String, name: &str, labels: &str, extra: Option<&str>, value: &str) {
    out.push_str(name);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        out.push_str(labels);
        if let Some(extra) = extra {
            if !labels.is_empty() {
                out.push(',');
            }
            out.push_str(extra);
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn render_entry(out: &mut String, name: &str, entry: &Entry) {
    let labels = entry.label_text.as_str();
    match &entry.metric {
        Metric::Counter(c) => write_sample(out, name, labels, None, &c.get().to_string()),
        Metric::Gauge(g) => write_sample(out, name, labels, None, &g.get().to_string()),
        Metric::Histogram(h) => {
            let bucket_name = format!("{name}_bucket");
            let exemplars = h.exemplars();
            for (i, (bound, cumulative)) in h.cumulative_buckets().into_iter().enumerate() {
                let le = match bound {
                    Some(b) => format!("le=\"{b}\""),
                    None => "le=\"+Inf\"".to_string(),
                };
                let mut value = cumulative.to_string();
                // OpenMetrics exemplar syntax: the bucket value followed
                // by ` # {trace_id="..."} <observed>`.
                if let Some((trace, observed)) = exemplars.get(i).copied().flatten() {
                    value.push_str(&format!(" # {{trace_id=\"{}\"}} {observed}", trace.to_hex()));
                }
                write_sample(out, &bucket_name, labels, Some(&le), &value);
            }
            write_sample(out, &format!("{name}_sum"), labels, None, &h.sum().to_string());
            write_sample(out, &format!("{name}_count"), labels, None, &h.count().to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for ms in [1u64, 1, 1, 2, 4, 9, 40, 400] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 8);
        // Rank 4 of 8: three 1 ms samples fill the 1000 µs bucket, the
        // 2 ms sample tips the median into the 2500 µs bucket.
        assert_eq!(h.quantile_us(0.5), Some(2_500));
        assert_eq!(h.quantile_us(1.0), Some(500_000));
        assert!(h.mean_us() > 0);
        let total: u64 = h.buckets().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let h = Histogram::new();
        h.record(Duration::from_secs(5));
        assert_eq!(h.buckets(), vec![(None, 1)]);
        assert_eq!(h.quantile_us(0.5), Some(1_000_000));
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.mean_us(), 0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn custom_bounds() {
        let h = Histogram::with_bounds(&[10, 5, 10, 1]);
        assert_eq!(h.bounds(), &[1, 5, 10]);
        h.observe(3);
        h.observe(30);
        assert_eq!(h.buckets(), vec![(Some(5), 1), (None, 1)]);
        assert_eq!(h.sum(), 33);
    }

    #[test]
    fn registry_reuses_series_by_name_and_labels() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("reqs_total", &[("svc", "quotes")]);
        let b = reg.counter("reqs_total", &[("svc", "quotes")]);
        let c = reg.counter("reqs_total", &[("svc", "other")]);
        a.inc();
        b.add(2);
        c.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(c.get(), 1);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_mismatch() {
        let reg = MetricsRegistry::new();
        reg.counter("mixed", &[]);
        reg.gauge("mixed", &[]);
    }

    #[test]
    fn prometheus_render_shapes() {
        let reg = MetricsRegistry::new();
        reg.counter("zeta_total", &[]).add(7);
        reg.gauge("alpha_inflight", &[("svc", "a\"b")]).set(-3);
        let h = reg.histogram_with_bounds("lat_us", &[("svc", "q")], &[100, 200]);
        h.observe(50);
        h.observe(150);
        h.observe(500);
        let text = reg.render_prometheus();
        // Families sorted by name, TYPE line per family.
        let alpha = text.find("# TYPE alpha_inflight gauge").unwrap();
        let lat = text.find("# TYPE lat_us histogram").unwrap();
        let zeta = text.find("# TYPE zeta_total counter").unwrap();
        assert!(alpha < lat && lat < zeta);
        assert!(text.contains("alpha_inflight{svc=\"a\\\"b\"} -3\n"));
        assert!(text.contains("zeta_total 7\n"));
        assert!(text.contains("lat_us_bucket{svc=\"q\",le=\"100\"} 1\n"));
        assert!(text.contains("lat_us_bucket{svc=\"q\",le=\"200\"} 2\n"));
        assert!(text.contains("lat_us_bucket{svc=\"q\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_us_sum{svc=\"q\"} 700\n"));
        assert!(text.contains("lat_us_count{svc=\"q\"} 3\n"));
    }

    #[test]
    fn histogram_exemplars_capture_the_active_trace() {
        use crate::context::{SpanId, TraceContext};

        let h = Histogram::with_bounds(&[100, 200]);
        h.observe(50); // no active context: no exemplar
        {
            let ctx = TraceContext { trace_id: TraceId(0xabc), span_id: SpanId(1), sampled: true };
            let _guard = crate::context::set_current(ctx);
            h.observe(150);
        }
        assert_eq!(h.exemplars(), vec![None, Some((TraceId(0xabc), 150)), None],);
    }

    #[test]
    fn exemplars_render_as_openmetrics_suffixes() {
        use crate::context::{SpanId, TraceContext};

        let reg = MetricsRegistry::new();
        let h = reg.histogram_with_bounds("lat_us", &[("svc", "q")], &[100, 200]);
        h.observe(50);
        {
            let ctx = TraceContext { trace_id: TraceId(0xfeed), span_id: SpanId(7), sampled: true };
            let _guard = crate::context::set_current(ctx);
            h.observe(150);
        }
        let text = reg.render_prometheus();
        // The untraced bucket renders bare; the traced one carries the
        // exemplar after its value.
        assert!(text.contains("lat_us_bucket{svc=\"q\",le=\"100\"} 1\n"));
        let expected = format!(
            "lat_us_bucket{{svc=\"q\",le=\"200\"}} 2 # {{trace_id=\"{}\"}} 150\n",
            TraceId(0xfeed).to_hex()
        );
        assert!(text.contains(&expected), "missing exemplar line in:\n{text}");
        assert!(text.contains("lat_us_bucket{svc=\"q\",le=\"+Inf\"} 2\n"));
    }
}
