/root/repo/target/debug/deps/soc_gateway-f0484717525b1b94.d: crates/soc-gateway/src/lib.rs

/root/repo/target/debug/deps/soc_gateway-f0484717525b1b94: crates/soc-gateway/src/lib.rs

crates/soc-gateway/src/lib.rs:
