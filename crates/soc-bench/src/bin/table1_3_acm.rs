//! **Tables 1–3 harness** — the ACM CS curriculum coverage matrices
//! (programming, algorithms, cross-cutting/advanced topics), extended
//! with the workspace module that implements each topic — making the
//! coverage claim executable (the modules are asserted to exist by the
//! crate's tests).
//!
//! ```sh
//! cargo run -p soc-bench --bin table1_3_acm
//! ```

use soc_curriculum::acm::{topics_in, TopicTable};

fn print_table(title: &str, table: TopicTable) {
    println!("{title}");
    soc_bench::print_rule(78);
    println!("{:<30} {:<7} Implemented by", "Topic", "Bloom#");
    soc_bench::print_rule(78);
    for t in topics_in(table) {
        let bloom: Vec<String> = t.bloom.iter().map(|b| b.to_string()).collect();
        println!("{:<30} {:<7} {}", t.name, bloom.join(","), t.modules.join(", "));
        println!("{:<38} └ {}", "", t.outcome);
    }
    println!();
}

fn main() {
    print_table("Table 1. ACM CS Programming topics", TopicTable::Programming);
    print_table("Table 2. Algorithms topics", TopicTable::Algorithms);
    print_table("Table 3. Cross cutting and advanced topics", TopicTable::CrossCutting);
    let n = soc_curriculum::acm::TOPICS.len();
    let m = soc_curriculum::acm::referenced_modules().len();
    println!("{n} topics mapped onto {m} distinct workspace modules; coverage is test-enforced.");
}
