/root/repo/target/debug/deps/proptest-98fae5b06303da3e.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-98fae5b06303da3e.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-98fae5b06303da3e.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
