//! ASCII chart rendering for terminal reproduction of Figure 5 (and any
//! other series the harness binaries print).

/// Render one or more named series as an ASCII line/scatter chart of
/// the given size. Values are scaled to the global maximum.
pub fn ascii_chart(series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    let width = width.max(10);
    let height = height.max(4);
    let max = series.iter().flat_map(|(_, v)| v.iter().copied()).fold(f64::MIN, f64::max).max(1e-9);
    let markers = ['*', '+', 'o', 'x', '#'];
    let mut grid = vec![vec![' '; width]; height];

    for (si, (_, values)) in series.iter().enumerate() {
        if values.is_empty() {
            continue;
        }
        let marker = markers[si % markers.len()];
        for (i, &v) in values.iter().enumerate() {
            let x = if values.len() == 1 { 0 } else { i * (width - 1) / (values.len() - 1) };
            let y = ((v / max) * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            grid[row][x] = marker;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{max:>8.1} ┤"));
    out.push_str(&grid[0].iter().collect::<String>());
    out.push('\n');
    for row in &grid[1..] {
        out.push_str("         │");
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str("         └");
    out.push_str(&"─".repeat(width));
    out.push('\n');
    // Legend.
    out.push_str("          ");
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("{} {}   ", markers[si % markers.len()], name));
    }
    out.push('\n');
    out
}

/// Render a horizontal bar chart with labels and values.
pub fn ascii_bars(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max).max(1e-9);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in rows {
        let bar_len = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!("{label:>label_w$} │{} {v:.1}\n", "█".repeat(bar_len)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_markers_and_legend() {
        let up: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let down: Vec<f64> = (1..=10).rev().map(|i| i as f64).collect();
        let out = ascii_chart(&[("rising", &up), ("falling", &down)], 40, 10);
        assert!(out.contains('*'));
        assert!(out.contains('+'));
        assert!(out.contains("rising"));
        assert!(out.contains("falling"));
        assert!(out.lines().count() >= 12);
    }

    #[test]
    fn peak_is_at_top_row() {
        let v = vec![1.0, 2.0, 10.0, 2.0];
        let out = ascii_chart(&[("s", &v)], 20, 6);
        let first_data_line = out.lines().next().unwrap();
        assert!(first_data_line.contains('*'), "{out}");
    }

    #[test]
    fn bars_scale_to_max() {
        let rows = vec![("a".to_string(), 5.0), ("bb".to_string(), 10.0)];
        let out = ascii_bars(&rows, 10);
        let lines: Vec<&str> = out.lines().collect();
        let count = |s: &str| s.chars().filter(|&c| c == '█').count();
        assert_eq!(count(lines[1]), 10);
        assert_eq!(count(lines[0]), 5);
        // Labels right-aligned to the widest.
        assert!(lines[0].starts_with(" a"));
    }

    #[test]
    fn empty_series_do_not_panic() {
        let out = ascii_chart(&[("empty", &[])], 20, 5);
        assert!(out.contains("empty"));
        assert!(ascii_bars(&[], 10).is_empty());
    }
}
