/root/repo/target/debug/deps/fig3_collatz-8d04b9229e7a4ca2.d: crates/soc-bench/src/bin/fig3_collatz.rs

/root/repo/target/debug/deps/fig3_collatz-8d04b9229e7a4ca2: crates/soc-bench/src/bin/fig3_collatz.rs

crates/soc-bench/src/bin/fig3_collatz.rs:
