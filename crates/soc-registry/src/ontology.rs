//! Ontology and semantic service matching — CSE446 unit 6 ("Ontology
//! and Semantic Web") made operational: a triple store with
//! `subClassOf` subsumption inference, and category-aware service
//! search that finds a "security" service when you ask for its
//! superclass, where plain keyword matching would miss it.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use crate::descriptor::ServiceDescriptor;

/// The predicate used for class hierarchy edges.
pub const SUB_CLASS_OF: &str = "subClassOf";

/// An RDF-flavoured triple (all terms are plain strings).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Subject term.
    pub subject: String,
    /// Predicate term.
    pub predicate: String,
    /// Object term.
    pub object: String,
}

impl Triple {
    /// Construct from string-ish parts.
    pub fn new(s: impl Into<String>, p: impl Into<String>, o: impl Into<String>) -> Self {
        Triple { subject: s.into(), predicate: p.into(), object: o.into() }
    }
}

/// A small in-memory triple store with subsumption reasoning.
#[derive(Debug, Default)]
pub struct Ontology {
    triples: Vec<Triple>,
    /// subject → objects, for `subClassOf` only (the reasoning edge).
    parents: HashMap<String, Vec<String>>,
}

impl Ontology {
    /// Empty ontology.
    pub fn new() -> Self {
        Ontology::default()
    }

    /// Insert a triple (idempotent).
    pub fn assert_triple(&mut self, t: Triple) {
        if self.triples.contains(&t) {
            return;
        }
        if t.predicate == SUB_CLASS_OF {
            self.parents.entry(t.subject.clone()).or_default().push(t.object.clone());
        }
        self.triples.push(t);
    }

    /// Convenience: `child subClassOf parent`.
    pub fn subclass(&mut self, child: &str, parent: &str) {
        self.assert_triple(Triple::new(child, SUB_CLASS_OF, parent));
    }

    /// Total asserted triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Nothing asserted yet?
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Pattern query: `None` terms are wildcards. Returns matching
    /// triples in assertion order.
    pub fn query(
        &self,
        subject: Option<&str>,
        predicate: Option<&str>,
        object: Option<&str>,
    ) -> Vec<&Triple> {
        self.triples
            .iter()
            .filter(|t| {
                subject.is_none_or(|s| t.subject == s)
                    && predicate.is_none_or(|p| t.predicate == p)
                    && object.is_none_or(|o| t.object == o)
            })
            .collect()
    }

    /// Is `class` a (possibly transitive, reflexive) subclass of
    /// `ancestor`? Cycles in the hierarchy are tolerated.
    pub fn is_subclass_of(&self, class: &str, ancestor: &str) -> bool {
        if class == ancestor {
            return true;
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([class.to_string()]);
        while let Some(c) = queue.pop_front() {
            if !seen.insert(c.clone()) {
                continue;
            }
            if let Some(parents) = self.parents.get(&c) {
                for p in parents {
                    if p == ancestor {
                        return true;
                    }
                    queue.push_back(p.clone());
                }
            }
        }
        false
    }

    /// All classes subsumed by `ancestor` (including itself), sorted —
    /// the expansion set a semantic query searches over.
    pub fn descendants(&self, ancestor: &str) -> BTreeSet<String> {
        let mut out: BTreeSet<String> = BTreeSet::new();
        out.insert(ancestor.to_string());
        // Fixed-point over the (small) class set.
        loop {
            let before = out.len();
            for (child, parents) in &self.parents {
                if parents.iter().any(|p| out.contains(p)) {
                    out.insert(child.clone());
                }
            }
            if out.len() == before {
                return out;
            }
        }
    }

    /// Semantic category match: services whose category is `category`
    /// *or any subclass of it* — the lookup a plain directory cannot do.
    pub fn services_in<'a>(
        &self,
        category: &str,
        services: &'a [ServiceDescriptor],
    ) -> Vec<&'a ServiceDescriptor> {
        let classes = self.descendants(category);
        services.iter().filter(|s| classes.contains(&s.category)).collect()
    }

    /// The default service-domain ontology the examples and tests use:
    ///
    /// ```text
    /// service ── security ── cryptography
    ///        │           └── authentication
    ///        ├── commerce ── payments
    ///        ├── infrastructure ── caching
    ///        │                 └── messaging
    ///        ├── finance
    ///        ├── robotics
    ///        ├── media
    ///        └── games
    /// ```
    pub fn service_domain() -> Self {
        let mut o = Ontology::new();
        for (child, parent) in [
            ("security", "service"),
            ("cryptography", "security"),
            ("authentication", "security"),
            ("commerce", "service"),
            ("payments", "commerce"),
            ("infrastructure", "service"),
            ("caching", "infrastructure"),
            ("messaging", "infrastructure"),
            ("finance", "service"),
            ("robotics", "service"),
            ("media", "service"),
            ("games", "service"),
        ] {
            o.subclass(child, parent);
        }
        o
    }

    /// Serialize as N-Triples-ish lines (teaching format).
    pub fn to_ntriples(&self) -> String {
        let mut out = String::new();
        for t in &self.triples {
            out.push_str(&format!("<{}> <{}> <{}> .\n", t.subject, t.predicate, t.object));
        }
        out
    }

    /// Parse the N-Triples-ish format written by [`Ontology::to_ntriples`].
    pub fn from_ntriples(src: &str) -> Result<Self, String> {
        let mut o = Ontology::new();
        for (lineno, line) in src.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.trim_end_matches('.').split_whitespace().collect();
            if parts.len() != 3 {
                return Err(format!("line {}: expected 3 terms", lineno + 1));
            }
            let term = |s: &str| -> Result<String, String> {
                s.strip_prefix('<')
                    .and_then(|s| s.strip_suffix('>'))
                    .map(str::to_string)
                    .ok_or_else(|| format!("line {}: terms must be <angle-quoted>", lineno + 1))
            };
            o.assert_triple(Triple::new(term(parts[0])?, term(parts[1])?, term(parts[2])?));
        }
        Ok(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::Binding;

    fn svc(id: &str, cat: &str) -> ServiceDescriptor {
        ServiceDescriptor::new(id, id, &format!("mem://s/{id}"), Binding::Rest).category(cat)
    }

    #[test]
    fn triple_assertion_is_idempotent() {
        let mut o = Ontology::new();
        o.subclass("a", "b");
        o.subclass("a", "b");
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn pattern_queries() {
        let mut o = Ontology::new();
        o.assert_triple(Triple::new("crypto", "providedBy", "asu"));
        o.assert_triple(Triple::new("cart", "providedBy", "asu"));
        o.subclass("crypto", "security");
        assert_eq!(o.query(None, Some("providedBy"), None).len(), 2);
        assert_eq!(o.query(Some("crypto"), None, None).len(), 2);
        assert_eq!(o.query(None, None, Some("asu")).len(), 2);
        assert_eq!(o.query(Some("cart"), Some("providedBy"), Some("asu")).len(), 1);
        assert!(o.query(Some("nope"), None, None).is_empty());
    }

    #[test]
    fn transitive_subsumption() {
        let o = Ontology::service_domain();
        assert!(o.is_subclass_of("cryptography", "security"));
        assert!(o.is_subclass_of("cryptography", "service"));
        assert!(o.is_subclass_of("security", "security")); // reflexive
        assert!(!o.is_subclass_of("security", "cryptography")); // not symmetric
        assert!(!o.is_subclass_of("commerce", "security"));
    }

    #[test]
    fn cycles_terminate() {
        let mut o = Ontology::new();
        o.subclass("a", "b");
        o.subclass("b", "c");
        o.subclass("c", "a");
        assert!(o.is_subclass_of("a", "c"));
        assert!(o.is_subclass_of("c", "b"));
        assert!(!o.is_subclass_of("a", "zzz"));
        let d = o.descendants("a");
        assert!(d.contains("b") && d.contains("c"));
    }

    #[test]
    fn descendants_expand_transitively() {
        let o = Ontology::service_domain();
        let d = o.descendants("security");
        assert!(d.contains("security"));
        assert!(d.contains("cryptography"));
        assert!(d.contains("authentication"));
        assert!(!d.contains("commerce"));
        let all = o.descendants("service");
        assert!(all.len() >= 12);
    }

    #[test]
    fn semantic_search_beats_exact_category_match() {
        let o = Ontology::service_domain();
        let services = vec![
            svc("enc", "cryptography"),
            svc("login", "authentication"),
            svc("cart", "commerce"),
            svc("cache", "caching"),
        ];
        // Exact match on "security" finds nothing…
        assert!(services.iter().all(|s| s.category != "security"));
        // …semantic match finds both security subclasses.
        let hits = o.services_in("security", &services);
        let ids: Vec<&str> = hits.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids, vec!["enc", "login"]);
        // And "service" subsumes everything.
        assert_eq!(o.services_in("service", &services).len(), 4);
    }

    #[test]
    fn ntriples_round_trip() {
        let o = Ontology::service_domain();
        let text = o.to_ntriples();
        let restored = Ontology::from_ntriples(&text).unwrap();
        assert_eq!(restored.len(), o.len());
        assert!(restored.is_subclass_of("cryptography", "service"));
    }

    #[test]
    fn ntriples_rejects_malformed_lines() {
        assert!(Ontology::from_ntriples("<a> <b> .").is_err());
        assert!(Ontology::from_ntriples("a b c .").is_err());
        // Comments and blanks are fine.
        assert!(Ontology::from_ntriples("# comment\n\n<a> <p> <b> .").is_ok());
    }
}
