//! JSON data-plane throughput (the REST side's wire format): owned
//! parse vs borrowed parse (`parse_ref`, escape-free strings stay
//! slices of the input), allocating serialization vs the
//! buffer-reusing `write_into` path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use soc_json::{parse_ref, Value};

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(150))
}

fn bench_json(c: &mut Criterion) {
    let mut group = c.benchmark_group("json");

    for (label, items) in [("small", 20usize), ("medium", 400), ("large", 8000)] {
        let text = soc_bench::synthetic_json(items);
        group.throughput(Throughput::Bytes(text.len() as u64));

        // Owned parse: the `Value` tree every consumer works with.
        group.bench_with_input(BenchmarkId::new("parse_owned", label), &text, |b, text| {
            b.iter(|| Value::parse(std::hint::black_box(text)).unwrap())
        });
        // Borrowed parse: escape-free strings are `Cow::Borrowed`
        // slices of the input — the parse-from-socket fast path.
        group.bench_with_input(BenchmarkId::new("parse_borrowed", label), &text, |b, text| {
            b.iter(|| parse_ref(std::hint::black_box(text)).unwrap())
        });

        let value = Value::parse(&text).unwrap();
        group.bench_with_input(BenchmarkId::new("serialize", label), &value, |b, value| {
            b.iter(|| std::hint::black_box(value).to_compact())
        });
        // Serialization into one reused buffer: amortizes the
        // allocation away entirely after the first iteration.
        group.bench_with_input(BenchmarkId::new("serialize_reuse", label), &value, |b, value| {
            let mut buf = String::new();
            b.iter(|| {
                buf.clear();
                std::hint::black_box(value).write_into(&mut buf);
                buf.len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_json
}
criterion_main!(benches);
