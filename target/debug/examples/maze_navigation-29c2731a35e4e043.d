/root/repo/target/debug/examples/maze_navigation-29c2731a35e4e043.d: examples/maze_navigation.rs

/root/repo/target/debug/examples/maze_navigation-29c2731a35e4e043: examples/maze_navigation.rs

examples/maze_navigation.rs:
