//! Synchronization primitives, built from atomics and thread parking in
//! the style of *Rust Atomics and Locks*.
//!
//! These are the course's unit-2 vocabulary made concrete:
//!
//! | Course concept | Type |
//! |---|---|
//! | semaphore | [`Semaphore`] |
//! | events & event coordination | [`AutoResetEvent`], [`ManualResetEvent`], [`CountdownEvent`] |
//! | resource locking | [`SpinLock`] |
//! | producer/consumer | [`BoundedBuffer`] |
//! | barrier synchronization | [`SenseBarrier`] |

mod barrier;
mod buffer;
mod event;
mod semaphore;
mod spinlock;

pub use barrier::SenseBarrier;
pub use buffer::{BoundedBuffer, BufferError};
pub use event::{AutoResetEvent, CountdownEvent, ManualResetEvent};
pub use semaphore::Semaphore;
pub use spinlock::{SpinLock, SpinLockGuard};
