//! Upstream resolution: mapping a service name to replica endpoints.
//!
//! Two strategies ship: a [`StaticResolver`] programmed directly (the
//! classroom topology, fixed by the instructor), and a
//! [`RegistryResolver`] that asks a live service directory — the
//! paper's "service directories and repositories" — and caches the
//! answer for a lease interval, re-resolving once the lease expires so
//! newly registered or departed replicas are picked up without a
//! directory round-trip per request.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use soc_http::mem::Transport;
use soc_registry::directory::DirectoryClient;

/// Anything that can turn a service name into replica endpoint URLs.
pub trait Resolve: Send + Sync {
    /// Endpoints currently believed to serve `service`. Empty means
    /// unknown service (the gateway answers 503).
    fn resolve(&self, service: &str) -> Vec<String>;
}

/// A hand-maintained service → replicas table.
#[derive(Default)]
pub struct StaticResolver {
    table: RwLock<HashMap<String, Vec<String>>>,
}

impl StaticResolver {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the replica set for `service`.
    pub fn set(&self, service: &str, endpoints: &[&str]) {
        let eps = endpoints.iter().map(|e| e.to_string()).collect();
        self.table.write().insert(service.to_string(), eps);
    }

    /// Forget `service` entirely.
    pub fn remove(&self, service: &str) {
        self.table.write().remove(service);
    }
}

impl Resolve for StaticResolver {
    fn resolve(&self, service: &str) -> Vec<String> {
        self.table.read().get(service).cloned().unwrap_or_default()
    }
}

struct CacheEntry {
    endpoints: Vec<String>,
    fetched: Instant,
    /// Lease-table version this entry was built against (lease mode
    /// only).
    lease_version: u64,
}

/// When a cached replica set stops being trusted.
enum Freshness {
    /// Wall-clock TTL: refetch descriptors once `0` elapses.
    Ttl(Duration),
    /// Lease-driven: poll the directory's cheap `/leases` version
    /// counter (at most every `min_check`) and refetch descriptors only
    /// when the live set actually changed. Replicas whose leases lapsed
    /// or were revoked drop out of resolution even though their
    /// descriptors stay published.
    Lease {
        /// Floor between `/leases` polls.
        min_check: Duration,
    },
}

/// Resolves against a service directory, caching each service's
/// replica set. Replicas are the directory entries whose id is exactly
/// the service name or `name#N` (the replica convention used throughout
/// the workspace), matched by id or human name.
///
/// Built with [`RegistryResolver::new`] the cache refreshes on a
/// wall-clock TTL; built with [`RegistryResolver::lease_driven`] it
/// refreshes when the directory's lease table changes, so a replica
/// that stops renewing disappears within one `min_check` instead of
/// one TTL — and steady state costs a version probe, not a descriptor
/// list.
///
/// When the directory is unreachable at refresh time, the stale cache
/// keeps serving — a flaky directory should degrade freshness, not
/// availability.
pub struct RegistryResolver {
    client: DirectoryClient,
    freshness: Freshness,
    cache: Mutex<HashMap<String, CacheEntry>>,
}

impl RegistryResolver {
    /// Resolver against the directory at `directory_url` (for example
    /// `mem://dir`), re-resolving every `lease`.
    pub fn new(transport: Arc<dyn Transport>, directory_url: &str, lease: Duration) -> Self {
        RegistryResolver {
            client: DirectoryClient::new(transport, directory_url),
            freshness: Freshness::Ttl(lease),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Lease-driven resolver: track the directory's lease table instead
    /// of a wall-clock TTL, polling its version at most every
    /// `min_check`.
    pub fn lease_driven(
        transport: Arc<dyn Transport>,
        directory_url: &str,
        min_check: Duration,
    ) -> Self {
        RegistryResolver {
            client: DirectoryClient::new(transport, directory_url),
            freshness: Freshness::Lease { min_check },
            cache: Mutex::new(HashMap::new()),
        }
    }

    fn fetch(&self, service: &str, live: Option<&[String]>) -> Option<Vec<String>> {
        let all = self.client.list().ok()?;
        let replica_prefix = format!("{service}#");
        let mut eps: Vec<String> = all
            .into_iter()
            .filter(|d| d.id == service || d.id.starts_with(&replica_prefix) || d.name == service)
            .filter(|d| live.is_none_or(|ids| ids.contains(&d.id)))
            .map(|d| d.endpoint)
            .collect();
        eps.sort();
        eps.dedup();
        Some(eps)
    }

    fn resolve_ttl(&self, service: &str, ttl: Duration) -> Vec<String> {
        let mut cache = self.cache.lock();
        if let Some(e) = cache.get(service) {
            if e.fetched.elapsed() < ttl {
                return e.endpoints.clone();
            }
        }
        match self.fetch(service, None) {
            Some(eps) => {
                cache.insert(
                    service.to_string(),
                    CacheEntry {
                        endpoints: eps.clone(),
                        fetched: Instant::now(),
                        lease_version: 0,
                    },
                );
                eps
            }
            // Directory down: keep whatever we knew.
            None => cache.get(service).map(|e| e.endpoints.clone()).unwrap_or_default(),
        }
    }

    fn resolve_lease(&self, service: &str, min_check: Duration) -> Vec<String> {
        let mut cache = self.cache.lock();
        if let Some(e) = cache.get(service) {
            if e.fetched.elapsed() < min_check {
                return e.endpoints.clone();
            }
        }
        let Ok(snap) = self.client.leases() else {
            // Directory down: keep whatever we knew.
            return cache.get(service).map(|e| e.endpoints.clone()).unwrap_or_default();
        };
        if let Some(e) = cache.get_mut(service) {
            if e.lease_version == snap.version {
                // Live set unchanged: the cached endpoints are still
                // right; just restart the poll clock.
                e.fetched = Instant::now();
                return e.endpoints.clone();
            }
        }
        // A directory that has never issued a lease reports version 0
        // with an empty live set; treat that as "leases not in use" and
        // fall back to unfiltered descriptors rather than resolving
        // everything to nothing.
        let live =
            if snap.version == 0 && snap.live.is_empty() { None } else { Some(&snap.live[..]) };
        match self.fetch(service, live) {
            Some(eps) => {
                cache.insert(
                    service.to_string(),
                    CacheEntry {
                        endpoints: eps.clone(),
                        fetched: Instant::now(),
                        lease_version: snap.version,
                    },
                );
                eps
            }
            None => cache.get(service).map(|e| e.endpoints.clone()).unwrap_or_default(),
        }
    }
}

impl Resolve for RegistryResolver {
    fn resolve(&self, service: &str) -> Vec<String> {
        match self.freshness {
            Freshness::Ttl(ttl) => self.resolve_ttl(service, ttl),
            Freshness::Lease { min_check } => self.resolve_lease(service, min_check),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_http::mem::FaultConfig;
    use soc_http::MemNetwork;
    use soc_registry::directory::DirectoryService;
    use soc_registry::{Binding, Repository, ServiceDescriptor};

    fn replica(id: &str) -> ServiceDescriptor {
        ServiceDescriptor::new(id, "credit", &format!("mem://{id}"), Binding::Rest)
    }

    fn directory_with_replicas() -> MemNetwork {
        let net = MemNetwork::new();
        let repo = Repository::new();
        repo.publish(replica("credit#0")).unwrap();
        repo.publish(replica("credit#1")).unwrap();
        repo.publish(ServiceDescriptor::new(
            "unrelated",
            "image verifier",
            "mem://img",
            Binding::Rest,
        ))
        .unwrap();
        let (dir, _) = DirectoryService::new(repo, vec![]);
        net.host("dir", dir);
        net
    }

    #[test]
    fn static_resolver_round_trips() {
        let r = StaticResolver::new();
        r.set("credit", &["mem://a", "mem://b"]);
        assert_eq!(r.resolve("credit"), vec!["mem://a", "mem://b"]);
        assert!(r.resolve("missing").is_empty());
        r.remove("credit");
        assert!(r.resolve("credit").is_empty());
    }

    #[test]
    fn registry_resolver_finds_replicas_by_convention() {
        let net = directory_with_replicas();
        let r = RegistryResolver::new(Arc::new(net), "mem://dir", Duration::from_secs(60));
        assert_eq!(r.resolve("credit"), vec!["mem://credit#0", "mem://credit#1"]);
        assert!(r.resolve("nope").is_empty());
    }

    #[test]
    fn lease_caches_until_expiry_then_refreshes() {
        let net = directory_with_replicas();
        let r =
            RegistryResolver::new(Arc::new(net.clone()), "mem://dir", Duration::from_millis(40));
        assert_eq!(r.resolve("credit").len(), 2);
        let hits_after_first = net.hits("dir");
        // Within the lease: served from cache, no directory traffic.
        assert_eq!(r.resolve("credit").len(), 2);
        assert_eq!(net.hits("dir"), hits_after_first);
        // Past the lease: the directory is consulted again.
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(r.resolve("credit").len(), 2);
        assert!(net.hits("dir") > hits_after_first);
    }

    #[test]
    fn lease_driven_tracks_the_live_set() {
        let net = directory_with_replicas();
        let dir = DirectoryClient::new(Arc::new(net.clone()), "mem://dir");
        dir.renew_lease("credit#0", 60_000).unwrap();
        dir.renew_lease("credit#1", 60_000).unwrap();

        let r = RegistryResolver::lease_driven(
            Arc::new(net.clone()),
            "mem://dir",
            Duration::from_millis(20),
        );
        assert_eq!(r.resolve("credit"), vec!["mem://credit#0", "mem://credit#1"]);

        // Within min_check: pure cache, no directory traffic at all.
        let hits = net.hits("dir");
        assert_eq!(r.resolve("credit").len(), 2);
        assert_eq!(net.hits("dir"), hits);

        // Past min_check with an unchanged lease table: one cheap
        // /leases probe, no descriptor refetch.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(r.resolve("credit").len(), 2);
        assert_eq!(net.hits("dir"), hits + 1);

        // A revoked lease drops the replica at the next probe, even
        // though its descriptor is still published.
        dir.revoke_lease("credit#1").unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(r.resolve("credit"), vec!["mem://credit#0"]);
    }

    #[test]
    fn lease_driven_without_leases_falls_back_to_descriptors() {
        // A directory that never issued a lease shouldn't resolve
        // everything to an empty set.
        let net = directory_with_replicas();
        let r = RegistryResolver::lease_driven(Arc::new(net), "mem://dir", Duration::from_secs(60));
        assert_eq!(r.resolve("credit").len(), 2);
    }

    #[test]
    fn lease_driven_survives_a_directory_outage() {
        let net = directory_with_replicas();
        let dir = DirectoryClient::new(Arc::new(net.clone()), "mem://dir");
        dir.renew_lease("credit#0", 60_000).unwrap();
        let r = RegistryResolver::lease_driven(
            Arc::new(net.clone()),
            "mem://dir",
            Duration::from_millis(5),
        );
        assert_eq!(r.resolve("credit"), vec!["mem://credit#0"]);
        net.set_fault("dir", FaultConfig { offline: true, ..Default::default() });
        std::thread::sleep(Duration::from_millis(10));
        // min_check elapsed and the probe fails: stale data beats none.
        assert_eq!(r.resolve("credit"), vec!["mem://credit#0"]);
    }

    #[test]
    fn stale_cache_survives_a_directory_outage() {
        let net = directory_with_replicas();
        let r =
            RegistryResolver::new(Arc::new(net.clone()), "mem://dir", Duration::from_millis(10));
        assert_eq!(r.resolve("credit").len(), 2);
        net.set_fault("dir", FaultConfig { offline: true, ..Default::default() });
        std::thread::sleep(Duration::from_millis(20));
        // Lease expired and the directory is down: stale data beats none.
        assert_eq!(r.resolve("credit").len(), 2);
    }
}
