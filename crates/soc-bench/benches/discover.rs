//! Discovery-layer overheads: what crawling, indexing, searching, and
//! planning cost.
//!
//! Discovery sits on the control path, not the data path — a crawl runs
//! per refresh interval, a plan runs once per goal — so the budgets are
//! generous. What they guard against is asymptotic accidents: a crawl
//! that re-fetches WSDL for unchanged directories, an index rebuild
//! that goes quadratic in the catalog, a planner whose backtracking
//! blows up on a deep dependency chain. Each row pins one such path and
//! the budgets are **asserted**, so `cargo bench --bench discover` is
//! an executable acceptance check.
//!
//! Not a Criterion harness, for the same reason as `chaos.rs`: the
//! budget asserts need a hard pass/fail, and the crawl row drives a
//! whole in-memory federation, where warm-up + timed-loop is steadier
//! than statistical resampling.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use soc_discover::catalog::{Catalog, DiscoveredService, TypedOperation};
use soc_discover::{demo, CrawlConfig, Discovery, Goal, NoQos, Planner, SearchIndex};
use soc_gateway::GatewayConfig;
use soc_http::mem::{MemNetwork, UniClient};
use soc_registry::{Binding, ServiceDescriptor};
use soc_soap::contract::Param;
use soc_soap::XsdType;

/// Coarse per-row budgets, in nanoseconds.
const BUDGET_CRAWL_COLD_NS: f64 = 20_000_000.0;
/// An unchanged re-crawl only re-reads lease versions; it must be far
/// cheaper than the cold crawl that fetches and parses every WSDL.
const BUDGET_CRAWL_WARM_NS: f64 = 2_000_000.0;
const BUDGET_INDEX_BUILD_NS: f64 = 2_000_000.0;
const BUDGET_SEARCH_NS: f64 = 100_000.0;
const BUDGET_PLAN_DEMO_NS: f64 = 500_000.0;
/// A 48-service chain, planned end to end with the static check on
/// top: the planner's worst committed shape must stay sub-millisecond.
const BUDGET_PLAN_CHAIN_NS: f64 = 3_000_000.0;

fn bench(name: &str, iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..(iters / 10).max(1) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
    println!("{name:<24} {ns:>12.1} ns/op   ({iters} iters)");
    ns
}

/// A linear dependency chain of `depth` services: service i consumes
/// `p{i}` and produces `p{i+1}`, so planning `have p0 → want p{depth}`
/// instantiates every node.
fn chain_catalog(depth: usize) -> Catalog {
    let mut catalog = Catalog::new();
    for i in 0..depth {
        let id = format!("chain-{i:03}");
        catalog.merge(DiscoveredService {
            descriptor: ServiceDescriptor::new(&id, &id, &format!("mem://{id}/api"), Binding::Rest),
            namespace: format!("urn:chain:{i}"),
            base_path: "/api".into(),
            operations: vec![TypedOperation {
                name: format!("Step{i}"),
                inputs: vec![Param { name: format!("p{i}"), ty: XsdType::Int }],
                outputs: vec![Param { name: format!("p{}", i + 1), ty: XsdType::Int }],
                doc: None,
            }],
            replicas: vec![format!("mem://{id}")],
            directories: vec!["mem://dir".into()],
        });
    }
    catalog
}

fn main() {
    println!("discovery-layer overhead");
    println!("{:<24} {:>15}", "operation", "cost");

    let net = MemNetwork::new();
    let _federation = demo::host_mem(&net);
    let roots = ["mem://dir-a"];

    // Cold crawl: 3 directories, 5 WSDL fetches, full catalog + index
    // rebuild, all through the gateway on the in-memory network.
    let crawl_cold = bench("crawl_cold", 200, || {
        let mut disc = Discovery::new(
            Arc::new(UniClient::new(net.clone())),
            GatewayConfig::default(),
            CrawlConfig::default(),
        );
        let stats = disc.crawl(&roots);
        assert_eq!(black_box(stats).visited.len(), 3);
    });

    // Warm re-crawl: lease versions unchanged, every directory skipped;
    // the price of polling the federation when nothing moved.
    let mut warm_disc = Discovery::new(
        Arc::new(UniClient::new(net.clone())),
        GatewayConfig::default(),
        CrawlConfig::default(),
    );
    warm_disc.crawl(&roots);
    let crawl_warm = bench("crawl_warm", 500, || {
        let stats = warm_disc.crawl(&roots);
        assert_eq!(black_box(stats).skipped_unchanged.len(), 3);
    });

    let catalog = warm_disc.catalog().clone();
    let index_build = bench("index_build", 2_000, || {
        black_box(SearchIndex::build(black_box(&catalog)));
    });

    let index = SearchIndex::build(&catalog);
    let search = bench("search_query", 20_000, || {
        let hits = index.search(black_box("assess loan risk"), &NoQos, 10);
        assert!(!black_box(hits).is_empty());
    });

    // The demo composition: 3-node credit → risk → underwriting plan.
    let goal = Goal::new()
        .have("ssn", XsdType::String)
        .have("amount", XsdType::Int)
        .have("income", XsdType::Int)
        .want("approved", XsdType::Boolean)
        .want("rate_bps", XsdType::Int);
    let plan_demo = bench("plan_demo", 5_000, || {
        let plan = Planner::new(&index, &NoQos).plan(black_box(&goal)).unwrap();
        assert_eq!(black_box(&plan).nodes.len(), 3);
    });

    // A 48-deep dependency chain: every node instantiated, then the
    // full static check (wiring, types, coverage, acyclicity) on top.
    const DEPTH: usize = 48;
    let chain = chain_catalog(DEPTH);
    let chain_index = SearchIndex::build(&chain);
    let chain_goal = Goal::new()
        .have("p0", XsdType::Int)
        .want(&format!("p{DEPTH}"), XsdType::Int)
        .max_nodes(DEPTH);
    let plan_chain = bench("plan_chain_checked", 500, || {
        let plan = Planner::new(&chain_index, &NoQos).plan(black_box(&chain_goal)).unwrap();
        assert_eq!(plan.nodes.len(), DEPTH);
        assert!(soc_discover::check(black_box(&plan), &chain_goal).is_empty());
    });

    for (name, got, budget) in [
        ("crawl_cold", crawl_cold, BUDGET_CRAWL_COLD_NS),
        ("crawl_warm", crawl_warm, BUDGET_CRAWL_WARM_NS),
        ("index_build", index_build, BUDGET_INDEX_BUILD_NS),
        ("search_query", search, BUDGET_SEARCH_NS),
        ("plan_demo", plan_demo, BUDGET_PLAN_DEMO_NS),
        ("plan_chain_checked", plan_chain, BUDGET_PLAN_CHAIN_NS),
    ] {
        assert!(got < budget, "{name} costs {got:.1} ns/op, over the {budget} ns budget");
    }
    println!("PASS: all rows within budget");
}
