/root/repo/target/debug/deps/proptests-60acbcca4eac4bac.d: crates/soc-services/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-60acbcca4eac4bac.rmeta: crates/soc-services/tests/proptests.rs Cargo.toml

crates/soc-services/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
