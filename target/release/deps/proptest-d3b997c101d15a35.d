/root/repo/target/release/deps/proptest-d3b997c101d15a35.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d3b997c101d15a35.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d3b997c101d15a35.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
