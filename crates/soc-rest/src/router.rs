//! Method + path-template routing.

use std::collections::BTreeSet;

use soc_http::{Handler, Method, Request, Response, Status};

/// Decoded path parameters captured from `{name}` template segments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathParams {
    params: Vec<(String, String)>,
}

impl PathParams {
    /// Value of a named parameter.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.params.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Parse a parameter into any `FromStr` type.
    pub fn parse<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.get(name)?.parse().ok()
    }

    /// Number of captured parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// No parameters captured?
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    Literal(String),
    Param(String),
    /// `{rest...}`: captures the remainder of the path (may contain `/`).
    Tail(String),
}

fn parse_pattern(pattern: &str) -> Vec<Segment> {
    pattern
        .trim_matches('/')
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|seg| {
            if let Some(inner) = seg.strip_prefix('{').and_then(|s| s.strip_suffix("...}")) {
                Segment::Tail(inner.to_string())
            } else if let Some(inner) = seg.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
                Segment::Param(inner.to_string())
            } else {
                Segment::Literal(seg.to_string())
            }
        })
        .collect()
}

fn match_pattern(segments: &[Segment], path: &str) -> Option<PathParams> {
    let parts: Vec<&str> = path.trim_matches('/').split('/').filter(|s| !s.is_empty()).collect();
    let mut params = PathParams::default();
    let mut i = 0;
    for seg in segments {
        match seg {
            Segment::Literal(lit) => {
                if parts.get(i) != Some(&lit.as_str()) {
                    return None;
                }
                i += 1;
            }
            Segment::Param(name) => {
                let part = parts.get(i)?;
                params.params.push((name.clone(), soc_http::url::percent_decode(part)));
                i += 1;
            }
            Segment::Tail(name) => {
                let rest = parts[i..].join("/");
                params.params.push((name.clone(), rest));
                i = parts.len();
            }
        }
    }
    if i == parts.len() {
        Some(params)
    } else {
        None
    }
}

type RouteHandler = Box<dyn Fn(Request, PathParams) -> Response + Send + Sync>;

struct Route {
    method: Method,
    segments: Vec<Segment>,
    pattern: String,
    handler: RouteHandler,
}

/// A REST router. Routes are matched in registration order; the first
/// method+pattern match wins. A path that matches some route with a
/// different method yields `405` with an `Allow` header; otherwise `404`.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
    middleware: Vec<crate::middleware::Middleware>,
}

impl Router {
    /// Empty router.
    pub fn new() -> Self {
        Router::default()
    }

    /// Register a route for an explicit method.
    pub fn route(
        &mut self,
        method: Method,
        pattern: &str,
        handler: impl Fn(Request, PathParams) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        self.routes.push(Route {
            method,
            segments: parse_pattern(pattern),
            pattern: pattern.to_string(),
            handler: Box::new(handler),
        });
        self
    }

    /// GET route.
    pub fn get(
        &mut self,
        pattern: &str,
        handler: impl Fn(Request, PathParams) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        self.route(Method::Get, pattern, handler)
    }

    /// POST route.
    pub fn post(
        &mut self,
        pattern: &str,
        handler: impl Fn(Request, PathParams) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        self.route(Method::Post, pattern, handler)
    }

    /// PUT route.
    pub fn put(
        &mut self,
        pattern: &str,
        handler: impl Fn(Request, PathParams) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        self.route(Method::Put, pattern, handler)
    }

    /// DELETE route.
    pub fn delete(
        &mut self,
        pattern: &str,
        handler: impl Fn(Request, PathParams) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        self.route(Method::Delete, pattern, handler)
    }

    /// Append a middleware; middlewares run outermost-first in the order
    /// they were added.
    pub fn wrap(&mut self, mw: crate::middleware::Middleware) -> &mut Self {
        self.middleware.push(mw);
        self
    }

    /// Registered route patterns (for directory self-description).
    pub fn patterns(&self) -> Vec<(Method, String)> {
        self.routes.iter().map(|r| (r.method, r.pattern.clone())).collect()
    }

    fn dispatch(&self, req: Request) -> Response {
        let path = req.path().to_string();
        let mut allowed: BTreeSet<&'static str> = BTreeSet::new();
        for route in &self.routes {
            if let Some(params) = match_pattern(&route.segments, &path) {
                if route.method == req.method {
                    return (route.handler)(req, params);
                }
                allowed.insert(route.method.as_str());
            }
        }
        if !allowed.is_empty() {
            let allow = allowed.into_iter().collect::<Vec<_>>().join(", ");
            return Response::error(Status::METHOD_NOT_ALLOWED, "method not allowed")
                .with_header("Allow", &allow);
        }
        Response::error(Status::NOT_FOUND, &format!("no route for {path}"))
    }
}

impl Handler for Router {
    fn handle(&self, req: Request) -> Response {
        let mut span = soc_observe::span("rest.dispatch", soc_observe::SpanKind::Internal);
        span.set_attr("http.method", req.method.as_str());
        span.set_attr("http.path", req.path());
        let resp = {
            let _active = span.activate();
            // Build the middleware chain inside-out around dispatch.
            let mut next: Box<dyn Fn(Request) -> Response + '_> =
                Box::new(move |req| self.dispatch(req));
            for mw in self.middleware.iter().rev() {
                let inner = next;
                let mw = mw.clone();
                next = Box::new(move |req| mw.call(req, &*inner));
            }
            next(req)
        };
        span.set_attr("http.status", resp.status.0.to_string());
        if resp.status.0 >= 500 {
            span.set_error(format!("handler answered {}", resp.status));
        }
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> Router {
        let mut r = Router::new();
        r.get("/services", |_req, _p| Response::text("list"));
        r.get("/services/{id}", |_req, p| Response::text(format!("get {}", p.get("id").unwrap())));
        r.post("/services", |req, _p| {
            Response::new(Status::CREATED).with_text("text/plain", req.text().unwrap_or(""))
        });
        r.delete("/services/{id}", |_req, p| {
            Response::text(format!("del {}", p.get("id").unwrap()))
        });
        r.get("/files/{path...}", |_req, p| {
            Response::text(format!("file {}", p.get("path").unwrap()))
        });
        r
    }

    fn send(r: &Router, req: Request) -> Response {
        r.handle(req)
    }

    #[test]
    fn literal_and_param_routes() {
        let r = router();
        assert_eq!(send(&r, Request::get("/services")).text_body().unwrap(), "list");
        assert_eq!(send(&r, Request::get("/services/s1")).text_body().unwrap(), "get s1");
        assert_eq!(send(&r, Request::delete("/services/s2")).text_body().unwrap(), "del s2");
    }

    #[test]
    fn params_are_percent_decoded() {
        let r = router();
        assert_eq!(send(&r, Request::get("/services/a%20b")).text_body().unwrap(), "get a b");
    }

    #[test]
    fn tail_captures_subpaths() {
        let r = router();
        assert_eq!(
            send(&r, Request::get("/files/a/b/c.txt")).text_body().unwrap(),
            "file a/b/c.txt"
        );
    }

    #[test]
    fn not_found_vs_method_not_allowed() {
        let r = router();
        assert_eq!(send(&r, Request::get("/nope")).status, Status::NOT_FOUND);
        let resp = send(&r, Request::put("/services/s1", Vec::new()));
        assert_eq!(resp.status, Status::METHOD_NOT_ALLOWED);
        assert_eq!(resp.headers.get("Allow"), Some("DELETE, GET"));
    }

    #[test]
    fn query_strings_do_not_affect_matching() {
        let r = router();
        assert_eq!(send(&r, Request::get("/services?verbose=1")).text_body().unwrap(), "list");
    }

    #[test]
    fn trailing_slashes_normalized() {
        let r = router();
        assert_eq!(send(&r, Request::get("/services/")).text_body().unwrap(), "list");
    }

    #[test]
    fn params_typed_parse() {
        let mut r = Router::new();
        r.get("/n/{num}", |_req, p| match p.parse::<u32>("num") {
            Some(n) => Response::text(format!("{}", n * 2)),
            None => Response::error(Status::BAD_REQUEST, "not a number"),
        });
        assert_eq!(send(&r, Request::get("/n/21")).text_body().unwrap(), "42");
        assert_eq!(send(&r, Request::get("/n/x")).status, Status::BAD_REQUEST);
    }

    #[test]
    fn registration_order_wins() {
        let mut r = Router::new();
        r.get("/a/{x}", |_rq, _p| Response::text("param"));
        r.get("/a/literal", |_rq, _p| Response::text("literal"));
        // First registered matches first.
        assert_eq!(send(&r, Request::get("/a/literal")).text_body().unwrap(), "param");
    }

    #[test]
    fn post_body_reaches_handler() {
        let r = router();
        let resp = send(&r, Request::post("/services", b"payload".to_vec()));
        assert_eq!(resp.status, Status::CREATED);
        assert_eq!(resp.text_body().unwrap(), "payload");
    }

    #[test]
    fn patterns_reflect_registrations() {
        let r = router();
        assert_eq!(r.patterns().len(), 5);
    }
}
