/root/repo/target/release/deps/fig1_raas-1de5776d67d5238f.d: crates/soc-bench/src/bin/fig1_raas.rs

/root/repo/target/release/deps/fig1_raas-1de5776d67d5238f: crates/soc-bench/src/bin/fig1_raas.rs

crates/soc-bench/src/bin/fig1_raas.rs:
