/root/repo/target/debug/deps/xml_stack-4bd9686eb8520141.d: tests/xml_stack.rs Cargo.toml

/root/repo/target/debug/deps/libxml_stack-4bd9686eb8520141.rmeta: tests/xml_stack.rs Cargo.toml

tests/xml_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
