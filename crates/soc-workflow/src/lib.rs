//! # soc-workflow — workflow-based software development
//!
//! The paper credits Microsoft VPL with "an important milestone in
//! service-oriented computing": an architecture-driven, service-oriented
//! language where students "develop services, deploy the services into a
//! repository, and then use the services in the repository to develop
//! workflow-based robotics applications". A CSE446 keynote calls
//! workflow development "the dream of generating executable directly
//! from the flowchart". This crate is that engine, three ways:
//!
//! - [`graph`] — the VPL model: a dataflow graph of typed
//!   [`activity::Activity`] blocks wired port-to-port, executed
//!   event-driven (a block fires when its inputs arrive), with
//!   validation (dangling ports, cycles) before execution.
//! - [`activity`] — the block vocabulary: constants, pure computations,
//!   conditionals, merges, and — crucially — [`activity::ServiceCall`],
//!   which invokes a REST service through any transport, making
//!   workflows *service compositions*.
//! - [`fsm`] — finite state machines (Figure 2 renders the two-distance
//!   maze algorithm as an FSM; `soc-robotics` runs it on this module).
//! - [`bpel`] — BPEL-style structured composition (sequence / flow /
//!   while / if / invoke / assign) over a shared variable scope — the
//!   "BPEL-based integration" project of CSE446.
//! - [`saga`] — fault-tolerant execution of the same graphs: per-node
//!   [`saga::ResiliencePolicy`] (retries, backoff+jitter, timeouts,
//!   fallbacks) and saga compensation with a structured
//!   [`saga::WorkflowOutcome`] — the dependability unit (CSE445
//!   unit 6) applied to the composition layer.

pub mod activity;
pub mod bpel;
pub mod fsm;
pub mod graph;
pub mod journal;
pub mod saga;

pub use activity::{Activity, ActivityError};
pub use fsm::{Fsm, FsmBuilder};
pub use graph::{WorkflowError, WorkflowGraph};
pub use journal::{Journal, ReplicatedJournal, SagaJournal, SagaRecord};
pub use saga::{ResiliencePolicy, SagaConfig, WorkflowOutcome};
