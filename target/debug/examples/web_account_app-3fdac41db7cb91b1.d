/root/repo/target/debug/examples/web_account_app-3fdac41db7cb91b1.d: examples/web_account_app.rs

/root/repo/target/debug/examples/web_account_app-3fdac41db7cb91b1: examples/web_account_app.rs

examples/web_account_app.rs:
