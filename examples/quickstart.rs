//! Quickstart: stand up the whole service-oriented stack in one
//! process — provider, broker (directory), and consumer — then make a
//! REST call, a SOAP call, and a discovery query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use soc::http::mem::Transport;
use soc::http::MemNetwork;
use soc::json::{json, Value};
use soc::registry::directory::{DirectoryClient, DirectoryService};
use soc::registry::Repository;
use soc::rest::RestClient;
use soc::soap::client::SoapClient;

fn main() {
    // 1. A virtual network, so the whole topology runs in-process.
    let net = MemNetwork::new();

    // 2. Provider: host the ASU repository's services (REST + SOAP).
    let catalog = soc::services::bindings::host_all(&net, 2014);
    println!("hosted {} services on mem://services.asu and mem://soap.asu", catalog.len());

    // 3. Broker: a directory the services are published into.
    let repo = Repository::new();
    for descriptor in catalog {
        repo.publish(descriptor).expect("unique ids");
    }
    let (directory, _state) = DirectoryService::new(repo, vec![]);
    net.host("directory.asu", directory);

    let transport: Arc<dyn Transport> = Arc::new(net);

    // 4. Consumer: discover a service by keyword, then call it.
    let directory = DirectoryClient::new(transport.clone(), "mem://directory.asu");
    let hits = directory.search("encrypt cipher").expect("directory up");
    println!("\ndirectory search for 'encrypt cipher':");
    for d in &hits {
        println!("  [{}] {} -> {}", d.id, d.name, d.endpoint);
    }

    // 5. REST call to the encryption service.
    let rest = RestClient::new(transport.clone());
    let encrypted = rest
        .post(
            "mem://services.asu/crypto/encrypt",
            &json!({ "passphrase": "kh2011", "plaintext": "service-oriented computing" }),
        )
        .expect("encrypt");
    let ciphertext = encrypted.get("ciphertext").and_then(Value::as_str).unwrap();
    println!("\nREST encrypt  -> {ciphertext}");
    let decrypted = rest
        .post(
            "mem://services.asu/crypto/decrypt",
            &json!({ "passphrase": "kh2011", "ciphertext": ciphertext }),
        )
        .expect("decrypt");
    println!("REST decrypt  -> {}", decrypted.get("plaintext").and_then(Value::as_str).unwrap());

    // 6. SOAP call with WSDL discovery (the course's broker flow).
    let soap = SoapClient::new(transport);
    let out = soap
        .discover_and_call("mem://soap.asu/credit", "GetScore", &[("ssn", "123-45-6789")])
        .expect("soap call");
    println!("SOAP GetScore -> credit score {}", out["score"]);

    println!("\nquickstart complete.");
}
