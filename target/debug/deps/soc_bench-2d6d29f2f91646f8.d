/root/repo/target/debug/deps/soc_bench-2d6d29f2f91646f8.d: crates/soc-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsoc_bench-2d6d29f2f91646f8.rmeta: crates/soc-bench/src/lib.rs Cargo.toml

crates/soc-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
