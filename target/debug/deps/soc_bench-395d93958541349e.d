/root/repo/target/debug/deps/soc_bench-395d93958541349e.d: crates/soc-bench/src/lib.rs

/root/repo/target/debug/deps/libsoc_bench-395d93958541349e.rlib: crates/soc-bench/src/lib.rs

/root/repo/target/debug/deps/libsoc_bench-395d93958541349e.rmeta: crates/soc-bench/src/lib.rs

crates/soc-bench/src/lib.rs:
