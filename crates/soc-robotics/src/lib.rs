//! # soc-robotics — Robot as a Service maze navigation
//!
//! Section II of the paper: students program maze-navigating robots
//! through a Web environment built on "the concept of Robot as a
//! Service"; *"the services hide the hardware and programming details,
//! \[which\] allows students to better understand different maze
//! algorithms ... such as a short-distance-based greedy algorithm and a
//! wall-following algorithm"*. Figure 2 gives the two-distance greedy
//! algorithm as a finite state machine.
//!
//! - [`maze`] — the maze model (per-cell walls), seeded perfect-maze
//!   generation (recursive backtracker), braiding, and a BFS
//!   shortest-path oracle.
//! - [`robot`] — the robot: position + heading, distance sensors
//!   (left/front/right open-cell counts — the "hardware" the service
//!   hides), movement with bump detection, and a step trace.
//! - [`algorithms`] — wall-following (left/right hand), the
//!   two-distance greedy FSM of Figure 2 (built on
//!   [`soc_workflow::fsm`]), a random-walk baseline, and the BFS oracle
//!   runner; plus the harness that races them ([`algorithms::run`]).
//! - [`raas`] — the REST binding: maze sessions, sensor reads, move
//!   commands, and whole-algorithm runs over HTTP — the paper's
//!   "Web-based robotics programming environment" (Figure 1).
//! - [`sync`] — virtual ↔ physical robot synchronization: commands are
//!   mirrored from the virtual robot to a (simulated) physical robot
//!   over an unreliable channel and reconciled, as the paper's Web
//!   robot "communicate\[s\] and synchronize\[s\] with the physical robot".

pub mod algorithms;
pub mod maze;
pub mod raas;
pub mod robot;
pub mod sync;

pub use algorithms::{Navigator, Outcome};
pub use maze::{Direction, Maze};
pub use robot::Robot;
