/root/repo/target/debug/deps/table1_3_acm-1425de3a3cdff5f7.d: crates/soc-bench/src/bin/table1_3_acm.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_3_acm-1425de3a3cdff5f7.rmeta: crates/soc-bench/src/bin/table1_3_acm.rs Cargo.toml

crates/soc-bench/src/bin/table1_3_acm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
