/root/repo/target/debug/deps/table4_enrollment-9b2324f6cdfaba23.d: crates/soc-bench/src/bin/table4_enrollment.rs

/root/repo/target/debug/deps/table4_enrollment-9b2324f6cdfaba23: crates/soc-bench/src/bin/table4_enrollment.rs

crates/soc-bench/src/bin/table4_enrollment.rs:
