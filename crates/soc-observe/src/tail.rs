//! Tail sampling: keep error traces even when head sampling drops them.
//!
//! Head-based sampling decides at the trace root, before anything has
//! gone wrong — which is exactly when the interesting traces (the ones
//! that end in errors) look like every other trace. With tail sampling
//! enabled ([`crate::set_tail_keep_errors`]), spans of head-unsampled
//! traces are buffered in a bounded pending pool instead of being
//! discarded outright. The moment any span in such a trace finishes
//! with [`crate::SpanStatus::Error`], the whole trace is *promoted*:
//! its buffered spans flush into the [`crate::SpanStore`] and later
//! spans of the trace record directly (so a parent that is still open
//! when its child fails is retained too). Traces that finish cleanly
//! age out of the pending pool without ever touching the store.
//!
//! The feature is off by default, and the unsampled fast path stays
//! allocation-free when it is off — the `observe` bench budgets that
//! path at well under a microsecond.

use std::collections::{HashMap, VecDeque};

use parking_lot::Mutex;

use crate::context::TraceId;
use crate::span::{SpanRecord, SpanStatus};

/// Most head-unsampled traces buffered at once; the oldest trace is
/// evicted (discarded, not promoted) when a new one arrives at
/// capacity.
pub const MAX_PENDING_TRACES: usize = 256;
/// Most spans buffered per pending trace; beyond this, the earliest
/// spans win (they carry the roots) and later ones are dropped unless
/// the trace is promoted first.
pub const MAX_SPANS_PER_TRACE: usize = 64;
/// Most promoted trace ids remembered. Old promotions are forgotten
/// FIFO; a forgotten trace's *later* spans fall back to pending.
const MAX_PROMOTED: usize = 1024;

#[derive(Default)]
struct State {
    /// Buffered spans per head-unsampled trace, plus arrival order for
    /// eviction.
    pending: HashMap<TraceId, Vec<SpanRecord>>,
    arrival: VecDeque<TraceId>,
    /// Traces promoted by an error span: subsequent spans bypass the
    /// buffer and record directly.
    promoted: VecDeque<TraceId>,
}

/// Bounded buffer of head-unsampled spans awaiting a verdict.
#[derive(Default)]
pub(crate) struct TailBuffer {
    state: Mutex<State>,
}

impl TailBuffer {
    /// Route one finished span of a head-unsampled trace. Returns the
    /// spans to flush into the store (empty for buffered spans, the
    /// whole trace on promotion).
    pub(crate) fn offer(&self, record: SpanRecord) -> Vec<SpanRecord> {
        let mut state = self.state.lock();
        if state.promoted.contains(&record.trace_id) {
            return vec![record];
        }
        let is_error = record.status == SpanStatus::Error;
        let trace_id = record.trace_id;
        // A span bumped off by the per-trace cap still flushes if it is
        // the error that promotes the trace.
        let mut overflow = None;
        match state.pending.get_mut(&trace_id) {
            Some(spans) => {
                if spans.len() < MAX_SPANS_PER_TRACE {
                    spans.push(record);
                } else {
                    overflow = Some(record);
                }
            }
            None => {
                while state.pending.len() >= MAX_PENDING_TRACES {
                    match state.arrival.pop_front() {
                        Some(old) => {
                            state.pending.remove(&old);
                        }
                        None => break,
                    }
                }
                state.pending.insert(trace_id, vec![record]);
                state.arrival.push_back(trace_id);
            }
        }
        if !is_error {
            return Vec::new();
        }
        // Promote: flush everything buffered for this trace and record
        // later spans of it directly.
        let mut spans = state.pending.remove(&trace_id).unwrap_or_default();
        spans.extend(overflow);
        state.arrival.retain(|t| *t != trace_id);
        if state.promoted.len() >= MAX_PROMOTED {
            state.promoted.pop_front();
        }
        state.promoted.push_back(trace_id);
        spans
    }

    /// Buffered traces right now (test/diagnostic hook).
    #[cfg(test)]
    pub(crate) fn pending_traces(&self) -> usize {
        self.state.lock().pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{SpanId, TraceId};
    use crate::span::SpanKind;

    fn rec(trace: u128, status: SpanStatus, name: &str) -> SpanRecord {
        SpanRecord {
            trace_id: TraceId(trace),
            span_id: SpanId::generate(),
            parent: None,
            name: name.to_string(),
            kind: SpanKind::Internal,
            start_us: 0,
            duration_us: 1,
            status,
            error: None,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn clean_traces_stay_buffered_and_age_out() {
        let buf = TailBuffer::default();
        assert!(buf.offer(rec(1, SpanStatus::Ok, "a")).is_empty());
        assert!(buf.offer(rec(1, SpanStatus::Ok, "b")).is_empty());
        assert_eq!(buf.pending_traces(), 1);
        // Fill the pool with other traces; trace 1 is evicted FIFO.
        for t in 2..(2 + MAX_PENDING_TRACES as u128) {
            buf.offer(rec(t, SpanStatus::Ok, "x"));
        }
        assert_eq!(buf.pending_traces(), MAX_PENDING_TRACES);
        // An error on the evicted trace promotes only itself.
        let flushed = buf.offer(rec(1, SpanStatus::Error, "late"));
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].name, "late");
    }

    #[test]
    fn error_flushes_whole_trace_then_records_directly() {
        let buf = TailBuffer::default();
        buf.offer(rec(7, SpanStatus::Ok, "child1"));
        buf.offer(rec(7, SpanStatus::Ok, "child2"));
        let flushed = buf.offer(rec(7, SpanStatus::Error, "boom"));
        let names: Vec<&str> = flushed.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["child1", "child2", "boom"]);
        // The still-open parent finishing later records directly.
        let late = buf.offer(rec(7, SpanStatus::Ok, "root"));
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].name, "root");
        assert_eq!(buf.pending_traces(), 0);
    }

    #[test]
    fn per_trace_span_cap_keeps_earliest() {
        let buf = TailBuffer::default();
        for i in 0..(MAX_SPANS_PER_TRACE + 10) {
            buf.offer(rec(9, SpanStatus::Ok, &format!("s{i}")));
        }
        let flushed = buf.offer(rec(9, SpanStatus::Error, "boom"));
        assert_eq!(flushed.len(), MAX_SPANS_PER_TRACE + 1);
        assert_eq!(flushed[0].name, "s0");
        assert_eq!(flushed.last().unwrap().name, "boom");
    }
}
