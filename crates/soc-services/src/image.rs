//! The dynamic image generation service: an RGB bitmap with drawing
//! primitives, a 5×7 bitmap font, chart rendering, and PPM/BMP
//! encoders — the unit-5 topic "dynamic graphics generation to leverage
//! the presentation of Web applications".

/// An RGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Color(pub u8, pub u8, pub u8);

#[allow(missing_docs)]
impl Color {
    pub const WHITE: Color = Color(255, 255, 255);
    pub const BLACK: Color = Color(0, 0, 0);
    pub const RED: Color = Color(200, 30, 30);
    pub const GREEN: Color = Color(30, 160, 60);
    pub const BLUE: Color = Color(40, 70, 200);
    pub const GRAY: Color = Color(180, 180, 180);
}

/// A simple in-memory RGB image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    width: usize,
    height: usize,
    pixels: Vec<Color>,
}

impl Bitmap {
    /// A `width × height` image filled with `background`.
    pub fn new(width: usize, height: usize, background: Color) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        Bitmap { width, height, pixels: vec![background; width * height] }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Read a pixel (panics out of bounds).
    pub fn get(&self, x: usize, y: usize) -> Color {
        self.pixels[y * self.width + x]
    }

    /// Write a pixel; silently ignores out-of-bounds (clip semantics).
    pub fn set(&mut self, x: i64, y: i64, color: Color) {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            self.pixels[y as usize * self.width + x as usize] = color;
        }
    }

    /// Filled rectangle (clipped).
    pub fn fill_rect(&mut self, x: i64, y: i64, w: usize, h: usize, color: Color) {
        for dy in 0..h as i64 {
            for dx in 0..w as i64 {
                self.set(x + dx, y + dy, color);
            }
        }
    }

    /// Bresenham line (clipped).
    pub fn line(&mut self, mut x0: i64, mut y0: i64, x1: i64, y1: i64, color: Color) {
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            self.set(x0, y0, color);
            if x0 == x1 && y0 == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x0 += sx;
            }
            if e2 <= dx {
                err += dx;
                y0 += sy;
            }
        }
    }

    /// Filled disk (clipped).
    pub fn disk(&mut self, cx: i64, cy: i64, r: i64, color: Color) {
        for y in -r..=r {
            for x in -r..=r {
                if x * x + y * y <= r * r {
                    self.set(cx + x, cy + y, color);
                }
            }
        }
    }

    /// Draw one glyph at `(x, y)` with the given pixel scale.
    pub fn glyph(&mut self, c: char, x: i64, y: i64, scale: usize, color: Color) {
        let rows = font5x7(c);
        for (ry, row) in rows.iter().enumerate() {
            for rx in 0..5 {
                if row & (1 << (4 - rx)) != 0 {
                    self.fill_rect(
                        x + (rx * scale) as i64,
                        y + (ry * scale) as i64,
                        scale,
                        scale,
                        color,
                    );
                }
            }
        }
    }

    /// Draw a string; returns the x coordinate after the last glyph.
    pub fn text(&mut self, s: &str, x: i64, y: i64, scale: usize, color: Color) -> i64 {
        let mut cx = x;
        for c in s.chars() {
            self.glyph(c, cx, y, scale, color);
            cx += (6 * scale) as i64;
        }
        cx
    }

    /// Count pixels equal to `color` (used by tests and the captcha's
    /// density heuristics).
    pub fn count_pixels(&self, color: Color) -> usize {
        self.pixels.iter().filter(|&&p| p == color).count()
    }

    /// Encode as binary PPM (P6).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for p in &self.pixels {
            out.extend_from_slice(&[p.0, p.1, p.2]);
        }
        out
    }

    /// Encode as an uncompressed 24-bit BMP.
    pub fn to_bmp(&self) -> Vec<u8> {
        let row_size = (self.width * 3).div_ceil(4) * 4;
        let pixel_bytes = row_size * self.height;
        let file_size = 54 + pixel_bytes;
        let mut out = Vec::with_capacity(file_size);
        // File header.
        out.extend_from_slice(b"BM");
        out.extend_from_slice(&(file_size as u32).to_le_bytes());
        out.extend_from_slice(&[0; 4]);
        out.extend_from_slice(&54u32.to_le_bytes());
        // DIB header (BITMAPINFOHEADER).
        out.extend_from_slice(&40u32.to_le_bytes());
        out.extend_from_slice(&(self.width as i32).to_le_bytes());
        out.extend_from_slice(&(self.height as i32).to_le_bytes());
        out.extend_from_slice(&1u16.to_le_bytes());
        out.extend_from_slice(&24u16.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&(pixel_bytes as u32).to_le_bytes());
        out.extend_from_slice(&2835u32.to_le_bytes());
        out.extend_from_slice(&2835u32.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        // Pixel data: bottom-up, BGR, rows padded to 4 bytes.
        for y in (0..self.height).rev() {
            let mut written = 0;
            for x in 0..self.width {
                let p = self.get(x, y);
                out.extend_from_slice(&[p.2, p.1, p.0]);
                written += 3;
            }
            while written % 4 != 0 {
                out.push(0);
                written += 1;
            }
        }
        out
    }
}

/// 5×7 font rows (bit 4 = leftmost). Covers digits, upper-case letters,
/// and a few punctuation marks; unknown characters render as a box.
pub fn font5x7(c: char) -> [u8; 7] {
    match c.to_ascii_uppercase() {
        '0' => [0x0E, 0x11, 0x13, 0x15, 0x19, 0x11, 0x0E],
        '1' => [0x04, 0x0C, 0x04, 0x04, 0x04, 0x04, 0x0E],
        '2' => [0x0E, 0x11, 0x01, 0x02, 0x04, 0x08, 0x1F],
        '3' => [0x1F, 0x02, 0x04, 0x02, 0x01, 0x11, 0x0E],
        '4' => [0x02, 0x06, 0x0A, 0x12, 0x1F, 0x02, 0x02],
        '5' => [0x1F, 0x10, 0x1E, 0x01, 0x01, 0x11, 0x0E],
        '6' => [0x06, 0x08, 0x10, 0x1E, 0x11, 0x11, 0x0E],
        '7' => [0x1F, 0x01, 0x02, 0x04, 0x08, 0x08, 0x08],
        '8' => [0x0E, 0x11, 0x11, 0x0E, 0x11, 0x11, 0x0E],
        '9' => [0x0E, 0x11, 0x11, 0x0F, 0x01, 0x02, 0x0C],
        'A' => [0x0E, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11],
        'B' => [0x1E, 0x11, 0x11, 0x1E, 0x11, 0x11, 0x1E],
        'C' => [0x0E, 0x11, 0x10, 0x10, 0x10, 0x11, 0x0E],
        'D' => [0x1C, 0x12, 0x11, 0x11, 0x11, 0x12, 0x1C],
        'E' => [0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x1F],
        'F' => [0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x10],
        'G' => [0x0E, 0x11, 0x10, 0x17, 0x11, 0x11, 0x0F],
        'H' => [0x11, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11],
        'I' => [0x0E, 0x04, 0x04, 0x04, 0x04, 0x04, 0x0E],
        'J' => [0x07, 0x02, 0x02, 0x02, 0x02, 0x12, 0x0C],
        'K' => [0x11, 0x12, 0x14, 0x18, 0x14, 0x12, 0x11],
        'L' => [0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x1F],
        'M' => [0x11, 0x1B, 0x15, 0x15, 0x11, 0x11, 0x11],
        'N' => [0x11, 0x19, 0x15, 0x13, 0x11, 0x11, 0x11],
        'O' => [0x0E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E],
        'P' => [0x1E, 0x11, 0x11, 0x1E, 0x10, 0x10, 0x10],
        'Q' => [0x0E, 0x11, 0x11, 0x11, 0x15, 0x12, 0x0D],
        'R' => [0x1E, 0x11, 0x11, 0x1E, 0x14, 0x12, 0x11],
        'S' => [0x0F, 0x10, 0x10, 0x0E, 0x01, 0x01, 0x1E],
        'T' => [0x1F, 0x04, 0x04, 0x04, 0x04, 0x04, 0x04],
        'U' => [0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E],
        'V' => [0x11, 0x11, 0x11, 0x11, 0x11, 0x0A, 0x04],
        'W' => [0x11, 0x11, 0x11, 0x15, 0x15, 0x1B, 0x11],
        'X' => [0x11, 0x11, 0x0A, 0x04, 0x0A, 0x11, 0x11],
        'Y' => [0x11, 0x11, 0x0A, 0x04, 0x04, 0x04, 0x04],
        'Z' => [0x1F, 0x01, 0x02, 0x04, 0x08, 0x10, 0x1F],
        ' ' => [0; 7],
        '-' => [0x00, 0x00, 0x00, 0x1F, 0x00, 0x00, 0x00],
        '.' => [0x00, 0x00, 0x00, 0x00, 0x00, 0x0C, 0x0C],
        ':' => [0x00, 0x0C, 0x0C, 0x00, 0x0C, 0x0C, 0x00],
        '%' => [0x18, 0x19, 0x02, 0x04, 0x08, 0x13, 0x03],
        '/' => [0x01, 0x02, 0x02, 0x04, 0x08, 0x08, 0x10],
        _ => [0x1F, 0x11, 0x11, 0x11, 0x11, 0x11, 0x1F],
    }
}

/// Render a labeled bar chart — the service's showcase endpoint (and
/// the renderer behind the Figure 5 harness when an image is wanted).
pub fn bar_chart(title: &str, series: &[(String, f64)], width: usize, height: usize) -> Bitmap {
    let mut img = Bitmap::new(width.max(80), height.max(60), Color::WHITE);
    let w = img.width();
    let h = img.height();
    img.text(title, 4, 2, 1, Color::BLACK);
    if series.is_empty() {
        return img;
    }
    let max = series.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max).max(1e-9);
    let chart_top = 14i64;
    let chart_bottom = h as i64 - 12;
    let chart_height = (chart_bottom - chart_top).max(1) as f64;
    let slot = w / series.len();
    let bar_w = (slot as f64 * 0.6) as usize;
    for (i, (label, v)) in series.iter().enumerate() {
        let bar_h = ((v / max) * chart_height) as i64;
        let x = (i * slot + (slot - bar_w) / 2) as i64;
        img.fill_rect(x, chart_bottom - bar_h, bar_w, bar_h.max(0) as usize, Color::BLUE);
        let short: String = label.chars().take(slot / 6).collect();
        img.text(&short, (i * slot) as i64 + 2, chart_bottom + 3, 1, Color::BLACK);
    }
    // Axis.
    img.line(0, chart_bottom, w as i64 - 1, chart_bottom, Color::BLACK);
    img
}

/// Render a polyline chart of one or more series.
pub fn line_chart(
    title: &str,
    series: &[(&str, Vec<f64>, Color)],
    width: usize,
    height: usize,
) -> Bitmap {
    let mut img = Bitmap::new(width.max(80), height.max(60), Color::WHITE);
    let w = img.width() as i64;
    let h = img.height() as i64;
    img.text(title, 4, 2, 1, Color::BLACK);
    let max =
        series.iter().flat_map(|(_, v, _)| v.iter().copied()).fold(f64::MIN, f64::max).max(1e-9);
    let top = 14i64;
    let bottom = h - 6;
    for (_, points, color) in series {
        if points.len() < 2 {
            continue;
        }
        let step = (w - 10) as f64 / (points.len() - 1) as f64;
        for i in 1..points.len() {
            let x0 = 5 + (step * (i - 1) as f64) as i64;
            let x1 = 5 + (step * i as f64) as i64;
            let y0 = bottom - ((points[i - 1] / max) * (bottom - top) as f64) as i64;
            let y1 = bottom - ((points[i] / max) * (bottom - top) as f64) as i64;
            img.line(x0, y0, x1, y1, *color);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixels_set_and_clip() {
        let mut img = Bitmap::new(10, 10, Color::WHITE);
        img.set(3, 4, Color::RED);
        assert_eq!(img.get(3, 4), Color::RED);
        // Out of bounds is a no-op, not a panic.
        img.set(-1, 0, Color::RED);
        img.set(100, 100, Color::RED);
        assert_eq!(img.count_pixels(Color::RED), 1);
    }

    #[test]
    fn rect_fills_expected_area() {
        let mut img = Bitmap::new(20, 20, Color::WHITE);
        img.fill_rect(2, 3, 5, 4, Color::BLUE);
        assert_eq!(img.count_pixels(Color::BLUE), 20);
        // Clipped rect.
        img.fill_rect(18, 18, 10, 10, Color::GREEN);
        assert_eq!(img.count_pixels(Color::GREEN), 4);
    }

    #[test]
    fn line_endpoints_are_drawn() {
        let mut img = Bitmap::new(30, 30, Color::WHITE);
        img.line(1, 1, 28, 20, Color::BLACK);
        assert_eq!(img.get(1, 1), Color::BLACK);
        assert_eq!(img.get(28, 20), Color::BLACK);
        assert!(img.count_pixels(Color::BLACK) >= 28);
    }

    #[test]
    fn disk_is_roughly_circular() {
        let mut img = Bitmap::new(21, 21, Color::WHITE);
        img.disk(10, 10, 5, Color::RED);
        let n = img.count_pixels(Color::RED) as f64;
        let area = std::f64::consts::PI * 25.0;
        assert!((n - area).abs() < area * 0.25, "disk area {n} vs {area}");
    }

    #[test]
    fn text_renders_ink() {
        let mut img = Bitmap::new(100, 20, Color::WHITE);
        let end = img.text("SOC 2014", 2, 2, 1, Color::BLACK);
        assert!(end > 2);
        assert!(img.count_pixels(Color::BLACK) > 50);
    }

    #[test]
    fn distinct_glyphs_have_distinct_shapes() {
        assert_ne!(font5x7('0'), font5x7('8'));
        assert_ne!(font5x7('A'), font5x7('B'));
        assert_eq!(font5x7('a'), font5x7('A'));
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Bitmap::new(4, 3, Color::WHITE);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(ppm.len(), 11 + 4 * 3 * 3);
    }

    #[test]
    fn bmp_structure() {
        let mut img = Bitmap::new(5, 2, Color::WHITE);
        img.set(0, 0, Color::RED);
        let bmp = img.to_bmp();
        assert_eq!(&bmp[0..2], b"BM");
        let file_size = u32::from_le_bytes(bmp[2..6].try_into().unwrap()) as usize;
        assert_eq!(file_size, bmp.len());
        // Rows padded to 4 bytes: 5*3=15 → 16 per row.
        assert_eq!(bmp.len(), 54 + 16 * 2);
        // Top-left red pixel is the *last* row in BMP (bottom-up), BGR.
        let last_row = &bmp[54 + 16..54 + 16 + 3];
        assert_eq!(last_row, &[30, 30, 200]);
    }

    #[test]
    fn bar_chart_draws_bars() {
        let img = bar_chart(
            "ENROLLMENT",
            &[("2006".into(), 39.0), ("2010".into(), 76.0), ("2013".into(), 134.0)],
            200,
            100,
        );
        assert!(img.count_pixels(Color::BLUE) > 100);
    }

    #[test]
    fn line_chart_draws_series() {
        let img =
            line_chart("SPEEDUP", &[("s", vec![1.0, 3.8, 7.2, 13.0, 22.0], Color::RED)], 200, 100);
        assert!(img.count_pixels(Color::RED) > 50);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_bitmap_rejected() {
        let _ = Bitmap::new(0, 5, Color::WHITE);
    }
}
