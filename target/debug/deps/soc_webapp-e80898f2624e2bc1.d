/root/repo/target/debug/deps/soc_webapp-e80898f2624e2bc1.d: crates/soc-webapp/src/lib.rs crates/soc-webapp/src/account_app.rs crates/soc-webapp/src/session.rs crates/soc-webapp/src/templates.rs crates/soc-webapp/src/viewstate.rs Cargo.toml

/root/repo/target/debug/deps/libsoc_webapp-e80898f2624e2bc1.rmeta: crates/soc-webapp/src/lib.rs crates/soc-webapp/src/account_app.rs crates/soc-webapp/src/session.rs crates/soc-webapp/src/templates.rs crates/soc-webapp/src/viewstate.rs Cargo.toml

crates/soc-webapp/src/lib.rs:
crates/soc-webapp/src/account_app.rs:
crates/soc-webapp/src/session.rs:
crates/soc-webapp/src/templates.rs:
crates/soc-webapp/src/viewstate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
