//! The discovery loop end to end: crawl a federated directory mesh
//! (referral cycles included), search the typed catalog with QoS-fused
//! ranking, state a goal and let the planner compose a verified
//! workflow, execute it as a saga through the gateway — then partition
//! the preferred provider and watch the loop re-plan around it.
//!
//! ```sh
//! cargo run --example service_discovery
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use soc::discover::{demo, AchieveConfig, CrawlConfig, Discovery, Goal};
use soc::gateway::GatewayConfig;
use soc::http::mem::{MemNetwork, UniClient, CLIENT_ORIGIN};
use soc::json::Value;
use soc::soap::XsdType;

fn main() {
    let net = MemNetwork::new();
    let federation = demo::host_mem(&net);

    // One Discovery stack over one gateway: crawling, searching, and
    // executing all share the same breakers, QoS monitor, and traces.
    let mut disc = Discovery::new(
        Arc::new(UniClient::new(net.clone())),
        GatewayConfig::default(),
        CrawlConfig::default(),
    );

    // -- Crawl -----------------------------------------------------------
    // One root; `/directory/peers` referrals walk dir-b and dir-c, and
    // the c → a back-edge exercises cycle detection.
    let stats = disc.crawl(&["mem://dir-a"]);
    println!("crawl: visited {:?}", stats.visited);
    println!("       {} services cataloged", disc.catalog().len());
    for svc in disc.catalog().services() {
        let ops: Vec<&str> = svc.operations.iter().map(|o| o.name.as_str()).collect();
        println!("       {:16} replicas={:?} ops={:?}", svc.descriptor.id, svc.replicas, ops);
    }

    // A second crawl is incremental: no lease moved, nothing re-fetched.
    let again = disc.crawl(&["mem://dir-a"]);
    println!("recrawl: skipped {} unchanged directories\n", again.skipped_unchanged.len());

    // -- Search ----------------------------------------------------------
    for query in ["assess loan risk", "underwriting approval"] {
        let hits = disc.search(query, 3);
        println!("search {query:?}:");
        for h in hits {
            println!(
                "       {:16} relevance={:.2} health={:.2} score={:.2}",
                h.service_id, h.relevance, h.health, h.score
            );
        }
    }

    // -- Plan ------------------------------------------------------------
    let goal = Goal::new()
        .have("ssn", XsdType::String)
        .have("amount", XsdType::Int)
        .have("income", XsdType::Int)
        .want("approved", XsdType::Boolean)
        .want("rate_bps", XsdType::Int);
    let plan = disc.plan(&goal).unwrap();
    println!("\nplan ({} nodes, statically verified):", plan.nodes.len());
    for (i, node) in plan.nodes.iter().enumerate() {
        println!("       [{i}] {}::{} via {:?}", node.service_id, node.operation, node.binding);
    }

    // -- Execute ---------------------------------------------------------
    let inputs = HashMap::from([
        ("ssn".to_string(), Value::from("123-45-6789")),
        ("amount".to_string(), Value::from(25_000)),
        ("income".to_string(), Value::from(90_000)),
    ]);
    let achieved = disc.achieve(&goal, &inputs, &AchieveConfig::default()).unwrap();
    println!(
        "\nexecute: approved={} rate_bps={} (attempts: {})",
        achieved.outputs["approved"], achieved.outputs["rate_bps"], achieved.attempts
    );

    // -- Re-plan under partition ----------------------------------------
    // Cut the caller off from the preferred risk provider: the saga
    // fails at that node, compensates, and the re-plan routes through
    // the alternative model.
    net.partition(CLIENT_ORIGIN, "risk-0");
    let rerouted = disc.achieve(&goal, &inputs, &AchieveConfig::default()).unwrap();
    let services: Vec<&str> = rerouted.plan.nodes.iter().map(|n| n.service_id.as_str()).collect();
    println!(
        "\nwith risk-0 partitioned: approved={} after {} attempts (denylisted {:?})",
        rerouted.outputs["approved"], rerouted.attempts, rerouted.replanned
    );
    println!("       rerouted plan: {services:?}");
    net.heal_all();

    drop(federation);
}
