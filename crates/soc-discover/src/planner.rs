//! Goal-directed composition planning.
//!
//! A [`Goal`] says what the caller *has* and what they *want*, both as
//! typed parameters. The planner chains discovered operations backward
//! from the wants: for each parameter it cannot source from the haves,
//! it picks a producing operation out of the index, then recurses into
//! that operation's inputs. Candidates are ranked by live health (via
//! the same [`QosFeed`] the search engine uses) so the plan prefers
//! replicas the gateway currently trusts, and a denylist lets the
//! executor re-plan around a service that just failed mid-saga.
//!
//! The output is a declarative [`Plan`] — nodes plus typed wires — that
//! says nothing about *how* to run it. The static checker
//! ([`crate::check`]) verifies a plan independently, and
//! [`crate::execute`] lowers accepted plans onto a workflow graph.
//! The planner is deterministic: one catalog, one goal, one feed ⇒ one
//! plan.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Duration;

use soc_registry::Binding;
use soc_soap::contract::Param;
use soc_soap::XsdType;

use crate::catalog::{DiscoveredService, TypedOperation};
use crate::index::{param_key, QosFeed, SearchIndex};

/// What the caller has, what they want, and the budget to get it.
#[derive(Debug, Clone)]
pub struct Goal {
    /// Parameters the caller can supply.
    pub have: Vec<Param>,
    /// Parameters the composition must produce.
    pub want: Vec<Param>,
    /// Wall-clock budget for executing the composition; also drives
    /// the per-node resilience policies derived at lowering time.
    pub deadline: Duration,
    /// Cap on plan size, against runaway chaining.
    pub max_nodes: usize,
}

impl Goal {
    /// An empty goal with a 5 s deadline and a 16-node cap.
    pub fn new() -> Self {
        Goal { have: Vec::new(), want: Vec::new(), deadline: Duration::from_secs(5), max_nodes: 16 }
    }

    /// Builder: declare an available input.
    pub fn have(mut self, name: &str, ty: XsdType) -> Self {
        self.have.push(Param { name: name.to_string(), ty });
        self
    }

    /// Builder: declare a required output.
    pub fn want(mut self, name: &str, ty: XsdType) -> Self {
        self.want.push(Param { name: name.to_string(), ty });
        self
    }

    /// Builder: set the execution deadline.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = d;
        self
    }

    /// Builder: set the node cap.
    pub fn max_nodes(mut self, n: usize) -> Self {
        self.max_nodes = n;
        self
    }
}

impl Default for Goal {
    fn default() -> Self {
        Goal::new()
    }
}

/// One planned service invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// Catalog service id.
    pub service_id: String,
    /// Operation to invoke.
    pub operation: String,
    /// Invocation binding (REST or SOAP).
    pub binding: Binding,
    /// Contract namespace (SOAP envelopes need it).
    pub namespace: String,
    /// Base path on any replica.
    pub base_path: String,
    /// Replica origins the gateway may use.
    pub replicas: Vec<String>,
    /// The operation's typed inputs.
    pub inputs: Vec<Param>,
    /// The operation's typed outputs.
    pub outputs: Vec<Param>,
}

/// Where a wired value comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum WireSource {
    /// A parameter the goal declared as available.
    Goal(String),
    /// Output `port` of plan node `node`.
    Node {
        /// Producing node index into [`Plan::nodes`].
        node: usize,
        /// Output parameter name on that node.
        port: String,
    },
}

/// One typed connection: `source` feeds input `port` of node `node`.
#[derive(Debug, Clone, PartialEq)]
pub struct Wire {
    /// Consuming node index.
    pub node: usize,
    /// Input parameter name on that node.
    pub port: String,
    /// The producer.
    pub source: WireSource,
}

/// A complete composition plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Plan {
    /// Invocations, in creation order (dependencies come first).
    pub nodes: Vec<PlanNode>,
    /// Typed wiring between goal inputs and nodes.
    pub wires: Vec<Wire>,
    /// How each wanted parameter is delivered: `(name, source)`.
    pub outputs: Vec<(String, WireSource)>,
}

/// Why planning failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// No discovered operation (outside the denylist and not ejected)
    /// produces this parameter from reachable inputs.
    NoProducer {
        /// `name: type` of the unproducible parameter.
        param: String,
    },
    /// The chain exceeded [`Goal::max_nodes`].
    TooLarge {
        /// The cap that was hit.
        max_nodes: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoProducer { param } => {
                write!(f, "no discovered operation can produce `{param}`")
            }
            PlanError::TooLarge { max_nodes } => {
                write!(f, "plan would exceed the {max_nodes}-node cap")
            }
        }
    }
}

/// The backward-chaining planner.
pub struct Planner<'a> {
    index: &'a SearchIndex,
    qos: &'a dyn QosFeed,
    denylist: HashSet<String>,
}

struct Ctx {
    nodes: Vec<PlanNode>,
    wires: Vec<Wire>,
    /// Signature key → producing `(node, port)`; doubles as the memo.
    produced: HashMap<String, (usize, String)>,
    /// Signatures currently being resolved up-stack (cycle guard).
    in_progress: HashSet<String>,
}

impl<'a> Planner<'a> {
    /// A planner over `index`, ranking candidates with `qos`.
    pub fn new(index: &'a SearchIndex, qos: &'a dyn QosFeed) -> Self {
        Planner { index, qos, denylist: HashSet::new() }
    }

    /// Exclude a service from this planner's plans (typically because
    /// it just failed mid-execution).
    pub fn deny(&mut self, service_id: &str) {
        self.denylist.insert(service_id.to_string());
    }

    /// Plan `goal`. Deterministic; returns the first error only after
    /// exhausting every candidate chain.
    pub fn plan(&self, goal: &Goal) -> Result<Plan, PlanError> {
        let mut ctx = Ctx {
            nodes: Vec::new(),
            wires: Vec::new(),
            produced: HashMap::new(),
            in_progress: HashSet::new(),
        };
        let mut outputs = Vec::new();
        for want in &goal.want {
            let source = self.resolve(goal, &mut ctx, want)?;
            outputs.push((want.name.clone(), source));
        }
        Ok(Plan { nodes: ctx.nodes, wires: ctx.wires, outputs })
    }

    /// Find a source for `param`: a goal input, something already
    /// planned, or a fresh node (whose own inputs resolve recursively,
    /// backtracking across candidates).
    fn resolve(&self, goal: &Goal, ctx: &mut Ctx, param: &Param) -> Result<WireSource, PlanError> {
        if let Some(h) =
            goal.have.iter().find(|h| h.ty == param.ty && h.name.eq_ignore_ascii_case(&param.name))
        {
            return Ok(WireSource::Goal(h.name.clone()));
        }
        let key = param_key(param);
        if let Some((node, port)) = ctx.produced.get(&key) {
            return Ok(WireSource::Node { node: *node, port: port.clone() });
        }
        let no_producer =
            || PlanError::NoProducer { param: format!("{}: {}", param.name, param.ty.xsd_name()) };
        if ctx.in_progress.contains(&key) {
            // Circular requirement up-stack: this candidate chain
            // cannot bottom out.
            return Err(no_producer());
        }

        let mut candidates: Vec<(&DiscoveredService, &TypedOperation, i64)> = self
            .index
            .producers_of(param)
            .into_iter()
            .filter(|(svc, _)| !self.denylist.contains(&svc.descriptor.id))
            .filter_map(|(svc, op)| {
                let snap = self.qos.snapshot(&svc.descriptor.id, &svc.replicas);
                // A fully ejected service is not a candidate at all:
                // planning onto it just schedules the next failure.
                // Health is quantized into coarse bands for ordering:
                // only *meaningful* QoS differences (a degraded or
                // erroring provider) should reorder candidates, not
                // microsecond jitter between two healthy ones.
                (!snap.ejected).then(|| (svc, op, (snap.health() * 8.0).round() as i64))
            })
            .collect();
        candidates.sort_by(|a, b| {
            b.2.cmp(&a.2)
                .then_with(|| a.1.inputs.len().cmp(&b.1.inputs.len()))
                .then_with(|| a.0.descriptor.id.cmp(&b.0.descriptor.id))
                .then_with(|| a.1.name.cmp(&b.1.name))
        });

        ctx.in_progress.insert(key.clone());
        let mut last_err = None;
        for (svc, op, _) in candidates {
            let checkpoint = (ctx.nodes.len(), ctx.wires.len(), ctx.produced.clone());
            match self.instantiate(goal, ctx, svc, op) {
                Ok(node) => {
                    ctx.in_progress.remove(&key);
                    return Ok(WireSource::Node { node, port: port_for(op, param) });
                }
                Err(e) => {
                    ctx.nodes.truncate(checkpoint.0);
                    ctx.wires.truncate(checkpoint.1);
                    ctx.produced = checkpoint.2;
                    last_err = Some(e);
                }
            }
        }
        ctx.in_progress.remove(&key);
        Err(last_err.unwrap_or_else(no_producer))
    }

    /// Add a node invoking `op` on `svc`, resolving its inputs first
    /// so dependencies precede it in [`Plan::nodes`].
    fn instantiate(
        &self,
        goal: &Goal,
        ctx: &mut Ctx,
        svc: &DiscoveredService,
        op: &TypedOperation,
    ) -> Result<usize, PlanError> {
        if ctx.nodes.len() >= goal.max_nodes {
            return Err(PlanError::TooLarge { max_nodes: goal.max_nodes });
        }
        let mut sources = Vec::with_capacity(op.inputs.len());
        for input in &op.inputs {
            sources.push((input.name.clone(), self.resolve(goal, ctx, input)?));
        }
        // Re-check after resolving inputs: the recursion above may have
        // pushed dependency nodes, and this node still has to fit.
        if ctx.nodes.len() >= goal.max_nodes {
            return Err(PlanError::TooLarge { max_nodes: goal.max_nodes });
        }
        let node = ctx.nodes.len();
        ctx.nodes.push(PlanNode {
            service_id: svc.descriptor.id.clone(),
            operation: op.name.clone(),
            binding: svc.descriptor.binding,
            namespace: svc.namespace.clone(),
            base_path: svc.base_path.clone(),
            replicas: svc.replicas.clone(),
            inputs: op.inputs.clone(),
            outputs: op.outputs.clone(),
        });
        for (port, source) in sources {
            ctx.wires.push(Wire { node, port, source });
        }
        for out in &op.outputs {
            ctx.produced.entry(param_key(out)).or_insert((node, out.name.clone()));
        }
        Ok(node)
    }
}

/// The output port on `op` that satisfies `param`.
fn port_for(op: &TypedOperation, param: &Param) -> String {
    op.outputs
        .iter()
        .find(|o| o.ty == param.ty && o.name.eq_ignore_ascii_case(&param.name))
        .map(|o| o.name.clone())
        .expect("instantiated producer must carry the requested output")
}
