//! A counting semaphore on a mutex + condvar pair.
//!
//! The mutex-based implementation is deliberately the "textbook" one —
//! permits are a counter protected by a lock, waiters sleep on a
//! condition variable — because this is the exact construction the
//! course teaches before contrasting it with lock-free designs
//! (see [`crate::sync::SpinLock`] and the `sync` benchmark).

use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// A counting semaphore.
///
/// ```
/// use soc_parallel::sync::Semaphore;
/// use std::sync::Arc;
///
/// let sem = Arc::new(Semaphore::new(2));
/// sem.acquire();
/// sem.acquire();
/// assert!(!sem.try_acquire());
/// sem.release();
/// assert!(sem.try_acquire());
/// ```
pub struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    /// Create with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore { permits: Mutex::new(permits), available: Condvar::new() }
    }

    /// Block until a permit is available, then take it.
    pub fn acquire(&self) {
        let mut permits = self.permits.lock();
        while *permits == 0 {
            self.available.wait(&mut permits);
        }
        *permits -= 1;
    }

    /// Take a permit if one is available right now.
    pub fn try_acquire(&self) -> bool {
        let mut permits = self.permits.lock();
        if *permits > 0 {
            *permits -= 1;
            true
        } else {
            false
        }
    }

    /// Wait up to `timeout` for a permit. Returns `true` on success.
    pub fn acquire_timeout(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut permits = self.permits.lock();
        while *permits == 0 {
            if self.available.wait_until(&mut permits, deadline).timed_out() {
                return false;
            }
        }
        *permits -= 1;
        true
    }

    /// Return one permit, waking a waiter if any.
    pub fn release(&self) {
        let mut permits = self.permits.lock();
        *permits += 1;
        drop(permits);
        self.available.notify_one();
    }

    /// Permits currently available (racy; for monitoring/tests only).
    pub fn available_permits(&self) -> usize {
        *self.permits.lock()
    }

    /// Run `f` while holding a permit (RAII-style usage).
    pub fn with_permit<T>(&self, f: impl FnOnce() -> T) -> T {
        self.acquire();
        // Release even if `f` panics, like a lock guard would.
        struct Guard<'a>(&'a Semaphore);
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                self.0.release();
            }
        }
        let _g = Guard(self);
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn basic_acquire_release() {
        let s = Semaphore::new(1);
        s.acquire();
        assert!(!s.try_acquire());
        s.release();
        assert!(s.try_acquire());
        s.release();
        assert_eq!(s.available_permits(), 1);
    }

    #[test]
    fn timeout_expires_without_permit() {
        let s = Semaphore::new(0);
        assert!(!s.acquire_timeout(Duration::from_millis(20)));
    }

    #[test]
    fn timeout_succeeds_when_released() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = s.clone();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            s2.release();
        });
        assert!(s.acquire_timeout(Duration::from_secs(5)));
        t.join().unwrap();
    }

    #[test]
    fn bounds_concurrency() {
        // With 3 permits, at most 3 threads may be inside at once.
        let s = Arc::new(Semaphore::new(3));
        let inside = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..12 {
            let (s, inside, peak) = (s.clone(), inside.clone(), peak.clone());
            handles.push(thread::spawn(move || {
                s.with_permit(|| {
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(Duration::from_millis(2));
                    inside.fetch_sub(1, Ordering::SeqCst);
                });
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3);
        assert_eq!(s.available_permits(), 3);
    }

    #[test]
    fn with_permit_releases_on_panic() {
        let s = Arc::new(Semaphore::new(1));
        let s2 = s.clone();
        let _ = thread::spawn(move || {
            s2.with_permit(|| panic!("boom"));
        })
        .join();
        assert_eq!(s.available_permits(), 1);
    }
}
