/root/repo/target/debug/examples/collatz_speedup-366863bc2360d8bf.d: examples/collatz_speedup.rs

/root/repo/target/debug/examples/collatz_speedup-366863bc2360d8bf: examples/collatz_speedup.rs

examples/collatz_speedup.rs:
