/root/repo/target/release/deps/fig3_collatz-1b8c01f8495bad86.d: crates/soc-bench/src/bin/fig3_collatz.rs

/root/repo/target/release/deps/fig3_collatz-1b8c01f8495bad86: crates/soc-bench/src/bin/fig3_collatz.rs

crates/soc-bench/src/bin/fig3_collatz.rs:
