//! Partition schedule generation: seeded sequences of directional
//! network cuts that always leave a quorum.
//!
//! A chaos campaign that partitions hosts at random quickly produces
//! uninteresting runs — cut enough links and *nothing* can succeed, so
//! every invariant holds vacuously. The schedules generated here keep
//! each step survivable by construction: every step picks a strict
//! minority of hosts as victims and only cuts links with a victim on
//! at least one side, so the remaining majority stays fully connected
//! (in both directions) and any protocol that can reach a quorum still
//! can. Cuts are *directional*, matching [`MemNetwork::partition`]:
//! a victim may be able to send but not receive, or vice versa — the
//! asymmetric gray failures that trip up naive health checking.
//!
//! `(seed, hosts, steps)` fully determines a schedule, so a failing
//! campaign replays exactly.

use soc_http::mem::MemNetwork;
use soc_http::FaultRng;

/// One directional cut: traffic `from → to` is dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    /// Origin host (or [`soc_http::mem::CLIENT_ORIGIN`]).
    pub from: String,
    /// Destination host.
    pub to: String,
}

/// One step of a schedule: the cuts active while the step holds, and
/// the majority that is guaranteed untouched.
#[derive(Debug, Clone)]
pub struct PartitionStep {
    /// Directional cuts to apply.
    pub cuts: Vec<Cut>,
    /// Hosts with no cut on either side in either direction — a strict
    /// majority, still fully interconnected.
    pub quorum: Vec<String>,
}

/// A seeded sequence of survivable partition steps.
#[derive(Debug, Clone)]
pub struct PartitionSchedule {
    /// The host population the schedule cuts across.
    pub hosts: Vec<String>,
    /// The steps, applied one at a time.
    pub steps: Vec<PartitionStep>,
}

impl PartitionSchedule {
    /// Generate `steps` random directional partition steps over
    /// `hosts`. Each step isolates a strict minority (1 ≤ victims ≤
    /// ⌊(n−1)/2⌋) with a random mix of inbound/outbound/total cuts;
    /// the surviving majority is recorded as the step's quorum.
    ///
    /// # Panics
    /// When `hosts` has fewer than three entries — no strict minority
    /// can be isolated from a majority below that.
    pub fn generate(seed: u64, hosts: &[&str], steps: usize) -> Self {
        assert!(hosts.len() >= 3, "a quorum-preserving schedule needs at least 3 hosts");
        let mut rng = FaultRng::new(seed ^ 0x9A57_1710); // "partition"
        let n = hosts.len();
        let max_victims = (n - 1) / 2;
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            // Choose the victim minority for this step.
            let k = 1 + (rng.next_u64() as usize) % max_victims.max(1);
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + (rng.next_u64() as usize) % (n - i);
                idx.swap(i, j);
            }
            let (victims, survivors) = idx.split_at(k);
            let mut cuts = Vec::new();
            for &v in victims {
                for &s in survivors {
                    // Direction mix: 0 = cut victim→survivor, 1 = cut
                    // survivor→victim, 2 = cut both. Every pair gets at
                    // least one cut so the victim is genuinely degraded.
                    match rng.next_u64() % 3 {
                        0 => cuts.push(Cut { from: hosts[v].into(), to: hosts[s].into() }),
                        1 => cuts.push(Cut { from: hosts[s].into(), to: hosts[v].into() }),
                        _ => {
                            cuts.push(Cut { from: hosts[v].into(), to: hosts[s].into() });
                            cuts.push(Cut { from: hosts[s].into(), to: hosts[v].into() });
                        }
                    }
                }
            }
            let mut quorum: Vec<String> = survivors.iter().map(|&s| hosts[s].into()).collect();
            quorum.sort();
            out.push(PartitionStep { cuts, quorum });
        }
        PartitionSchedule { hosts: hosts.iter().map(|h| h.to_string()).collect(), steps: out }
    }

    /// Apply step `i` to `net`, healing whatever step was active
    /// before. Out-of-range steps just heal.
    pub fn apply(&self, net: &MemNetwork, i: usize) {
        net.heal_all();
        if let Some(step) = self.steps.get(i) {
            for cut in &step.cuts {
                net.partition(&cut.from, &cut.to);
            }
        }
    }

    /// Check the invariant the generator promises: every step's quorum
    /// is a strict majority of the hosts and no cut touches a quorum
    /// member on either side. Returns the violations (empty = sound).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for (i, step) in self.steps.iter().enumerate() {
            if step.quorum.len() * 2 <= self.hosts.len() {
                v.push(format!(
                    "step {i}: quorum {} of {} is not a strict majority",
                    step.quorum.len(),
                    self.hosts.len()
                ));
            }
            for cut in &step.cuts {
                if step.quorum.contains(&cut.from) && step.quorum.contains(&cut.to) {
                    v.push(format!(
                        "step {i}: cut {} -> {} severs two quorum members",
                        cut.from, cut.to
                    ));
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_http::mem::Transport;
    use soc_http::{Request, Response};

    #[test]
    fn schedules_always_preserve_a_quorum() {
        for seed in 0..50u64 {
            let hosts = ["a", "b", "c", "d", "e"];
            let sched = PartitionSchedule::generate(seed, &hosts, 8);
            assert_eq!(sched.steps.len(), 8);
            assert!(sched.violations().is_empty(), "{:?}", sched.violations());
            for step in &sched.steps {
                assert!(!step.cuts.is_empty(), "a step must degrade someone");
            }
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let hosts = ["a", "b", "c", "d"];
        let x = PartitionSchedule::generate(7, &hosts, 5);
        let y = PartitionSchedule::generate(7, &hosts, 5);
        for (sx, sy) in x.steps.iter().zip(&y.steps) {
            assert_eq!(sx.cuts, sy.cuts);
            assert_eq!(sx.quorum, sy.quorum);
        }
        let z = PartitionSchedule::generate(8, &hosts, 5);
        assert!(x.steps.iter().zip(&z.steps).any(|(a, b)| a.cuts != b.cuts));
    }

    #[test]
    fn apply_cuts_and_heals_on_the_network() {
        let net = MemNetwork::new();
        for h in ["a", "b", "c"] {
            net.host(h, |_req: Request| Response::text("ok"));
        }
        let sched = PartitionSchedule::generate(3, &["a", "b", "c"], 4);
        for (i, step) in sched.steps.iter().enumerate() {
            sched.apply(&net, i);
            // Quorum members reach each other; at least one victim link
            // is dead in the cut direction.
            for cut in &step.cuts {
                // A cut from a host origin can't be observed from the
                // test thread (the client origin); assert on
                // client-origin cuts only, plus full quorum health.
                if cut.from == soc_http::mem::CLIENT_ORIGIN {
                    assert!(net.send(Request::get(format!("mem://{}/x", cut.to))).is_err());
                }
            }
            for q in &step.quorum {
                assert!(net.send(Request::get(format!("mem://{q}/x"))).is_ok());
            }
        }
        // Past the end: everything healed.
        sched.apply(&net, sched.steps.len());
        for h in ["a", "b", "c"] {
            assert!(net.send(Request::get(format!("mem://{h}/x"))).is_ok());
        }
    }
}
