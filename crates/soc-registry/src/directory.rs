//! The directory's REST binding and its typed client.
//!
//! A directory exposes:
//!
//! | Route | Method | Meaning |
//! |---|---|---|
//! | `/services` | GET | list all descriptors |
//! | `/services` | POST | register a descriptor (the paper's "registration page") |
//! | `/services/{id}` | GET / DELETE | fetch / unregister |
//! | `/categories` | GET | distinct categories |
//! | `/search?q=…` | GET | ranked TF-IDF search |
//! | `/semantic-search?category=…` | GET | ontology-expanded category match (CSE446 unit 6) |
//! | `/peers` | GET | other directories this one knows about (crawler fuel) |
//! | `/directory/peers` | GET | federation referral: peer base URLs plus this directory's lease version |
//! | `/leases` | GET | lease table version + live service ids |
//! | `/leases/{id}` | POST / DELETE | renew / revoke a registration lease |
//! | `/leases/{id}/fenced` | POST | renew an infrastructure node's fenced lease (returns the fencing epoch) |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;
use soc_http::{Handler, Request, Response, Status};
use soc_json::Value;
use soc_rest::router::Router;

use crate::descriptor::ServiceDescriptor;
use crate::repository::Repository;
use crate::search::SearchEngine;

/// A hosted directory service wrapping a [`Repository`].
pub struct DirectoryService {
    router: Router,
}

/// Default lease duration when the renewer doesn't ask for one.
pub const DEFAULT_LEASE_TTL_MS: u64 = 30_000;

/// Shared state behind the routes.
pub struct DirectoryState {
    /// The backing repository.
    pub repository: Repository,
    /// Peer directory URLs (e.g. `mem://dir-b`).
    pub peers: RwLock<Vec<String>>,
    /// Category ontology backing `/semantic-search`.
    pub ontology: crate::ontology::Ontology,
    /// Registration leases: a provider that stops renewing drops out of
    /// the live set even though its descriptor stays published.
    pub leases: crate::monitor::LeaseTable,
    /// Bumped whenever the live set changes (renewal of a lapsed lease,
    /// expiry, revocation). Resolvers poll this cheaply instead of
    /// refetching descriptors on a wall-clock timer.
    pub lease_version: AtomicU64,
    started: Instant,
}

impl DirectoryState {
    /// Milliseconds since the directory started — the lease clock.
    pub fn lease_now(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Expire lapsed leases, then return `(version, live ids)`.
    pub fn lease_snapshot(&self) -> (u64, Vec<String>) {
        let now = self.lease_now();
        if !self.leases.expire(now).is_empty() {
            self.lease_version.fetch_add(1, Ordering::AcqRel);
        }
        (self.lease_version.load(Ordering::Acquire), self.leases.live(now))
    }

    /// Live `(id, endpoint)` pairs for providers that advertised one —
    /// what `soc-store` hashes into its shard ring.
    pub fn lease_endpoints(&self) -> Vec<(String, String)> {
        self.leases.live_endpoints(self.lease_now())
    }

    /// Renew `id`'s lease for `ttl_ms`, returning the (possibly bumped)
    /// version. Only a *newly* live id changes the set, so steady-state
    /// renewals leave the version untouched.
    pub fn renew_lease(&self, id: &str, ttl_ms: u64) -> u64 {
        self.renew_lease_with_endpoint(id, ttl_ms, None)
    }

    /// Renew `id`'s lease, optionally advertising the provider's
    /// serving endpoint. A changed or newly advertised endpoint bumps
    /// the version too: shard maps must rebuild when a provider moves,
    /// not just when it appears or disappears.
    pub fn renew_lease_with_endpoint(&self, id: &str, ttl_ms: u64, endpoint: Option<&str>) -> u64 {
        let now = self.lease_now();
        let was_live = self.leases.is_live(id, now);
        let endpoints_before =
            if endpoint.is_some() { self.leases.live_endpoints(now) } else { Vec::new() };
        self.leases.renew_with_endpoint(id, now, ttl_ms, endpoint);
        let moved = endpoint.is_some() && self.leases.live_endpoints(now) != endpoints_before;
        if !was_live || moved {
            self.lease_version.fetch_add(1, Ordering::AcqRel);
        }
        self.lease_version.load(Ordering::Acquire)
    }

    /// Revoke `id`'s lease; returns whether it was live.
    pub fn revoke_lease(&self, id: &str) -> bool {
        let was_live = self.leases.revoke(id, self.lease_now());
        if was_live {
            self.lease_version.fetch_add(1, Ordering::AcqRel);
        }
        was_live
    }
}

impl DirectoryService {
    /// Build a directory over `repository` that advertises `peers`,
    /// with the default service-domain ontology.
    pub fn new(repository: Repository, peers: Vec<String>) -> (Self, Arc<DirectoryState>) {
        Self::with_ontology(repository, peers, crate::ontology::Ontology::service_domain())
    }

    /// Build with an explicit category ontology.
    pub fn with_ontology(
        repository: Repository,
        peers: Vec<String>,
        ontology: crate::ontology::Ontology,
    ) -> (Self, Arc<DirectoryState>) {
        let state = Arc::new(DirectoryState {
            repository,
            peers: RwLock::new(peers),
            ontology,
            leases: crate::monitor::LeaseTable::new(),
            lease_version: AtomicU64::new(0),
            started: Instant::now(),
        });
        let mut router = Router::new();

        {
            let st = state.clone();
            router.get("/services", move |_req, _p| {
                let items: Vec<Value> =
                    st.repository.list().into_iter().map(|d| d.to_json()).collect();
                Response::json(&Value::Array(items).to_compact())
            });
        }
        {
            let st = state.clone();
            router.post("/services", move |req, _p| {
                let Ok(text) = req.text() else {
                    return Response::error(Status::BAD_REQUEST, "body is not UTF-8");
                };
                let v = match Value::parse(text) {
                    Ok(v) => v,
                    Err(e) => return Response::error(Status::BAD_REQUEST, &e.to_string()),
                };
                let d = match ServiceDescriptor::from_json(&v) {
                    Ok(d) => d,
                    Err(e) => return Response::error(Status::UNPROCESSABLE, &e),
                };
                match st.repository.publish(d.clone()) {
                    Ok(()) => {
                        let mut resp = Response::json(&d.to_json().to_compact());
                        resp.status = Status::CREATED;
                        resp
                    }
                    Err(e) => Response::error(Status::CONFLICT, &e),
                }
            });
        }
        {
            let st = state.clone();
            router.get("/services/{id}", move |_req, p| {
                match st.repository.get(p.get("id").unwrap_or("")) {
                    Some(d) => Response::json(&d.to_json().to_compact()),
                    None => Response::error(Status::NOT_FOUND, "no such service"),
                }
            });
        }
        {
            let st = state.clone();
            router.delete("/services/{id}", move |_req, p| {
                let id = p.get("id").unwrap_or("");
                if st.repository.unpublish(id) {
                    // An unpublished service can't stay live.
                    st.revoke_lease(id);
                    Response::new(Status::NO_CONTENT)
                } else {
                    Response::error(Status::NOT_FOUND, "no such service")
                }
            });
        }
        {
            let st = state.clone();
            router.get("/leases", move |_req, _p| {
                let (version, live) = st.lease_snapshot();
                let mut v = Value::object();
                v.set("version", version as i64);
                v.set("live", Value::Array(live.into_iter().map(Value::from).collect()));
                let mut eps = Value::object();
                for (id, endpoint) in st.lease_endpoints() {
                    eps.set(id.as_str(), endpoint);
                }
                v.set("endpoints", eps);
                Response::json(&v.to_compact())
            });
        }
        {
            let st = state.clone();
            router.post("/leases/{id}", move |req, p| {
                let id = p.get("id").unwrap_or("");
                if st.repository.get(id).is_none() {
                    return Response::error(Status::NOT_FOUND, "no such service");
                }
                let ttl_ms = req
                    .query("ttl_ms")
                    .and_then(|t| t.parse::<u64>().ok())
                    .unwrap_or(DEFAULT_LEASE_TTL_MS);
                let endpoint = req.query("endpoint");
                let version = st.renew_lease_with_endpoint(id, ttl_ms, endpoint.as_deref());
                let mut v = Value::object();
                v.set("version", version as i64);
                v.set("ttl_ms", ttl_ms as i64);
                Response::json(&v.to_compact())
            });
        }
        {
            // Fenced lease renewal for infrastructure nodes (store
            // shards). Unlike `/leases/{id}` there is no repository
            // membership check — a store node is not a published
            // service descriptor — and the returned version doubles as
            // the node's fencing epoch: replicas refuse replication
            // traffic carrying an older epoch, so a primary that can no
            // longer renew here can no longer be obeyed.
            let st = state.clone();
            router.post("/leases/{id}/fenced", move |req, p| {
                let id = p.get("id").unwrap_or("");
                if id.is_empty() {
                    return Response::error(Status::BAD_REQUEST, "missing lease id");
                }
                let ttl_ms = req
                    .query("ttl_ms")
                    .and_then(|t| t.parse::<u64>().ok())
                    .unwrap_or(DEFAULT_LEASE_TTL_MS);
                let endpoint = req.query("endpoint");
                let version = st.renew_lease_with_endpoint(id, ttl_ms, endpoint.as_deref());
                let mut v = Value::object();
                v.set("version", version as i64);
                v.set("ttl_ms", ttl_ms as i64);
                Response::json(&v.to_compact())
            });
        }
        {
            let st = state.clone();
            router.delete("/leases/{id}", move |_req, p| {
                if st.revoke_lease(p.get("id").unwrap_or("")) {
                    Response::new(Status::NO_CONTENT)
                } else {
                    Response::error(Status::NOT_FOUND, "no live lease")
                }
            });
        }
        {
            let st = state.clone();
            router.get("/categories", move |_req, _p| {
                let cats: Vec<Value> =
                    st.repository.categories().into_iter().map(Value::from).collect();
                Response::json(&Value::Array(cats).to_compact())
            });
        }
        {
            let st = state.clone();
            router.get("/search", move |req, _p| {
                let Some(q) = req.query("q") else {
                    return Response::error(Status::BAD_REQUEST, "missing query parameter q");
                };
                let limit = req.query("limit").and_then(|l| l.parse::<usize>().ok()).unwrap_or(10);
                // The index is rebuilt per query; directories are small
                // and registrations are frequent. The bench quantifies
                // the tradeoff against a cached index.
                let engine = SearchEngine::build(st.repository.list());
                let hits: Vec<Value> = engine
                    .search(&q, limit)
                    .into_iter()
                    .map(|h| {
                        let mut v = h.service.to_json();
                        v.set("score", h.score);
                        v
                    })
                    .collect();
                Response::json(&Value::Array(hits).to_compact())
            });
        }
        {
            let st = state.clone();
            router.get("/semantic-search", move |req, _p| {
                let Some(category) = req.query("category") else {
                    return Response::error(
                        Status::BAD_REQUEST,
                        "missing query parameter category",
                    );
                };
                let services = st.repository.list();
                let hits: Vec<Value> = st
                    .ontology
                    .services_in(&category, &services)
                    .into_iter()
                    .map(|d| d.to_json())
                    .collect();
                Response::json(&Value::Array(hits).to_compact())
            });
        }
        {
            let st = state.clone();
            router.get("/peers", move |_req, _p| {
                let peers: Vec<Value> = st.peers.read().iter().cloned().map(Value::from).collect();
                Response::json(&Value::Array(peers).to_compact())
            });
        }
        {
            // Federation referral: which other directories this one
            // knows about, stamped with the local lease version so a
            // crawler can skip an unchanged directory on re-crawl.
            let st = state.clone();
            router.get("/directory/peers", move |_req, _p| {
                let (version, _live) = st.lease_snapshot();
                let peers: Vec<Value> = st.peers.read().iter().cloned().map(Value::from).collect();
                let mut v = Value::object();
                v.set("version", version as i64);
                v.set("peers", Value::Array(peers));
                Response::json(&v.to_compact())
            });
        }

        (DirectoryService { router }, state)
    }
}

impl Handler for DirectoryService {
    fn handle(&self, req: Request) -> Response {
        self.router.handle(req)
    }
}

/// Errors surfaced by [`DirectoryClient`] calls.
#[derive(Debug)]
pub enum DirectoryError {
    /// The transport failed before the directory answered (offline host,
    /// connection refused, malformed reply, …).
    Transport(soc_http::HttpError),
    /// The directory answered with a non-success status.
    Status {
        /// The status returned.
        status: Status,
        /// Response body text, best effort.
        body: String,
    },
    /// The directory answered 2xx but the payload didn't decode.
    Decode(String),
}

impl DirectoryError {
    /// The HTTP status the directory answered with, if it answered.
    pub fn status(&self) -> Option<Status> {
        match self {
            DirectoryError::Status { status, .. } => Some(*status),
            _ => None,
        }
    }
}

impl std::fmt::Display for DirectoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirectoryError::Transport(e) => write!(f, "directory unreachable: {e}"),
            DirectoryError::Status { status, body } => {
                write!(f, "directory error {status}: {body}")
            }
            DirectoryError::Decode(d) => write!(f, "bad payload from directory: {d}"),
        }
    }
}

impl std::error::Error for DirectoryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DirectoryError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<soc_rest::RestError> for DirectoryError {
    fn from(e: soc_rest::RestError) -> Self {
        match e {
            soc_rest::RestError::Transport(t) => DirectoryError::Transport(t),
            soc_rest::RestError::Status { status, body } => DirectoryError::Status { status, body },
            soc_rest::RestError::Decode(d) => DirectoryError::Decode(d),
        }
    }
}

/// Result alias for directory calls.
pub type DirectoryResult<T> = Result<T, DirectoryError>;

/// Typed client for a directory.
#[derive(Clone)]
pub struct DirectoryClient {
    rest: soc_rest::RestClient,
    base: String,
}

impl DirectoryClient {
    /// Client for the directory at `base` (e.g. `mem://dir-a`).
    pub fn new(transport: Arc<dyn soc_http::mem::Transport>, base: &str) -> Self {
        DirectoryClient {
            rest: soc_rest::RestClient::new(transport),
            base: base.trim_end_matches('/').to_string(),
        }
    }

    /// Register a descriptor.
    pub fn register(&self, d: &ServiceDescriptor) -> DirectoryResult<()> {
        self.rest.post(&format!("{}/services", self.base), &d.to_json())?;
        Ok(())
    }

    /// Unregister by id.
    pub fn unregister(&self, id: &str) -> DirectoryResult<()> {
        self.rest.delete(&format!("{}/services/{id}", self.base))?;
        Ok(())
    }

    /// All descriptors.
    pub fn list(&self) -> DirectoryResult<Vec<ServiceDescriptor>> {
        let v = self.rest.get(&format!("{}/services", self.base))?;
        decode_list(&v)
    }

    /// One descriptor.
    pub fn get(&self, id: &str) -> DirectoryResult<ServiceDescriptor> {
        let v = self.rest.get(&format!("{}/services/{id}", self.base))?;
        ServiceDescriptor::from_json(&v).map_err(DirectoryError::Decode)
    }

    /// Ranked search.
    pub fn search(&self, query: &str) -> DirectoryResult<Vec<ServiceDescriptor>> {
        let url = format!("{}/search?q={}", self.base, soc_http::url::percent_encode(query));
        let v = self.rest.get(&url)?;
        decode_list(&v)
    }

    /// Ontology-expanded category search.
    pub fn semantic_search(&self, category: &str) -> DirectoryResult<Vec<ServiceDescriptor>> {
        let url = format!(
            "{}/semantic-search?category={}",
            self.base,
            soc_http::url::percent_encode(category)
        );
        let v = self.rest.get(&url)?;
        decode_list(&v)
    }

    /// Peer directory URLs.
    pub fn peers(&self) -> DirectoryResult<Vec<String>> {
        let v = self.rest.get(&format!("{}/peers", self.base))?;
        Ok(v.as_array()
            .unwrap_or(&[])
            .iter()
            .filter_map(Value::as_str)
            .map(str::to_string)
            .collect())
    }

    /// Federation referral: peer directory base URLs plus this
    /// directory's lease version (see `/directory/peers`).
    pub fn referrals(&self) -> DirectoryResult<Referral> {
        let v = self.rest.get(&format!("{}/directory/peers", self.base))?;
        let version = v
            .pointer("/version")
            .and_then(Value::as_i64)
            .ok_or_else(|| DirectoryError::Decode("referral missing version".into()))?
            as u64;
        let peers = v
            .pointer("/peers")
            .and_then(Value::as_array)
            .ok_or_else(|| DirectoryError::Decode("referral missing peers".into()))?
            .iter()
            .filter_map(Value::as_str)
            .map(str::to_string)
            .collect();
        Ok(Referral { version, peers })
    }

    /// Renew `id`'s lease for `ttl_ms`; returns the lease-table version.
    pub fn renew_lease(&self, id: &str, ttl_ms: u64) -> DirectoryResult<u64> {
        self.renew_lease_at(id, ttl_ms, None)
    }

    /// Renew `id`'s lease, advertising the provider's serving endpoint
    /// so shard maps built from this directory can route to it.
    pub fn renew_lease_at(
        &self,
        id: &str,
        ttl_ms: u64,
        endpoint: Option<&str>,
    ) -> DirectoryResult<u64> {
        let mut url =
            format!("{}/leases/{}?ttl_ms={ttl_ms}", self.base, soc_http::url::percent_encode(id));
        if let Some(ep) = endpoint {
            url.push_str(&format!("&endpoint={}", soc_http::url::percent_encode(ep)));
        }
        let v = self.rest.post(&url, &Value::object())?;
        v.pointer("/version")
            .and_then(Value::as_i64)
            .map(|n| n as u64)
            .ok_or_else(|| DirectoryError::Decode("lease renewal missing version".into()))
    }

    /// Renew a *fenced* lease for an infrastructure node (no published
    /// descriptor required). Returns the lease-table version, which is
    /// the node's fencing epoch.
    pub fn renew_fenced_lease(
        &self,
        id: &str,
        ttl_ms: u64,
        endpoint: Option<&str>,
    ) -> DirectoryResult<u64> {
        let mut url = format!(
            "{}/leases/{}/fenced?ttl_ms={ttl_ms}",
            self.base,
            soc_http::url::percent_encode(id)
        );
        if let Some(ep) = endpoint {
            url.push_str(&format!("&endpoint={}", soc_http::url::percent_encode(ep)));
        }
        let v = self.rest.post(&url, &Value::object())?;
        v.pointer("/version")
            .and_then(Value::as_i64)
            .map(|n| n as u64)
            .ok_or_else(|| DirectoryError::Decode("fenced lease renewal missing version".into()))
    }

    /// Current lease-table version plus the live service ids.
    pub fn leases(&self) -> DirectoryResult<LeaseSnapshot> {
        let v = self.rest.get(&format!("{}/leases", self.base))?;
        let version = v
            .pointer("/version")
            .and_then(Value::as_i64)
            .ok_or_else(|| DirectoryError::Decode("lease snapshot missing version".into()))?
            as u64;
        let live = v
            .pointer("/live")
            .and_then(Value::as_array)
            .ok_or_else(|| DirectoryError::Decode("lease snapshot missing live set".into()))?
            .iter()
            .filter_map(Value::as_str)
            .map(str::to_string)
            .collect();
        // Endpoints are optional on the wire: older directories (and
        // providers that never advertise one) simply yield none.
        let mut endpoints: Vec<(String, String)> = v
            .pointer("/endpoints")
            .and_then(Value::as_object)
            .map(|entries| {
                entries
                    .iter()
                    .filter_map(|(id, ep)| ep.as_str().map(|e| (id.clone(), e.to_string())))
                    .collect()
            })
            .unwrap_or_default();
        endpoints.sort();
        Ok(LeaseSnapshot { version, live, endpoints })
    }

    /// Revoke `id`'s lease (deliberate shutdown).
    pub fn revoke_lease(&self, id: &str) -> DirectoryResult<()> {
        self.rest.delete(&format!("{}/leases/{}", self.base, soc_http::url::percent_encode(id)))?;
        Ok(())
    }
}

/// A federation referral: where else to crawl, and how fresh the
/// referring directory itself is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Referral {
    /// The referring directory's lease-table version — unchanged
    /// version ⇒ unchanged live set, so a re-crawl can skip it.
    pub version: u64,
    /// Peer directory base URLs.
    pub peers: Vec<String>,
}

/// One observation of a directory's lease table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseSnapshot {
    /// Change counter: unchanged version ⇒ unchanged live set.
    pub version: u64,
    /// Service ids with unexpired leases, sorted.
    pub live: Vec<String>,
    /// `(id, endpoint)` for live providers that advertised a serving
    /// endpoint, sorted — the input `soc-store`'s shard map hashes.
    pub endpoints: Vec<(String, String)>,
}

fn decode_list(v: &Value) -> DirectoryResult<Vec<ServiceDescriptor>> {
    v.as_array()
        .ok_or_else(|| DirectoryError::Decode("expected a JSON array".into()))?
        .iter()
        .map(|d| ServiceDescriptor::from_json(d).map_err(DirectoryError::Decode))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::Binding;
    use soc_http::MemNetwork;

    fn setup() -> (MemNetwork, DirectoryClient) {
        let net = MemNetwork::new();
        let (dir, _state) = DirectoryService::new(Repository::new(), vec!["mem://dir-b".into()]);
        net.host("dir-a", dir);
        let client = DirectoryClient::new(Arc::new(net.clone()), "mem://dir-a");
        (net, client)
    }

    fn svc(id: &str) -> ServiceDescriptor {
        ServiceDescriptor::new(
            id,
            &format!("{id} service"),
            &format!("mem://svc/{id}"),
            Binding::Rest,
        )
        .describe("a test service for the directory")
        .category("testing")
    }

    #[test]
    fn register_list_get_unregister() {
        let (_net, client) = setup();
        client.register(&svc("alpha")).unwrap();
        client.register(&svc("beta")).unwrap();
        assert_eq!(client.list().unwrap().len(), 2);
        assert_eq!(client.get("alpha").unwrap().name, "alpha service");
        client.unregister("alpha").unwrap();
        assert_eq!(client.list().unwrap().len(), 1);
        assert!(client.get("alpha").is_err());
    }

    #[test]
    fn duplicate_registration_conflicts() {
        let (_net, client) = setup();
        client.register(&svc("dup")).unwrap();
        let err = client.register(&svc("dup")).unwrap_err();
        assert_eq!(err.status(), Some(Status::CONFLICT), "{err}");
        assert!(err.to_string().contains("409"), "{err}");
    }

    #[test]
    fn offline_directory_is_a_transport_error() {
        let (net, client) = setup();
        net.set_fault("dir-a", soc_http::mem::FaultConfig { offline: true, ..Default::default() });
        let err = client.list().unwrap_err();
        assert!(matches!(err, DirectoryError::Transport(_)), "{err}");
        assert!(err.status().is_none());
        // DirectoryError is a real std error with a source chain.
        let dyn_err: &dyn std::error::Error = &err;
        assert!(dyn_err.source().is_some());
    }

    #[test]
    fn search_over_http_binding() {
        let (_net, client) = setup();
        client.register(&svc("guess").describe("random number guessing game")).unwrap();
        client.register(&svc("cart").describe("shopping cart totals")).unwrap();
        let hits = client.search("guessing game").unwrap();
        assert_eq!(hits[0].id, "guess");
    }

    #[test]
    fn peers_endpoint() {
        let (_net, client) = setup();
        assert_eq!(client.peers().unwrap(), vec!["mem://dir-b".to_string()]);
    }

    #[test]
    fn referral_endpoint_carries_lease_version() {
        let (_net, client) = setup();
        let r = client.referrals().unwrap();
        assert_eq!(r, Referral { version: 0, peers: vec!["mem://dir-b".to_string()] });
        // A live-set change is visible in the referral version too.
        client.register(&svc("alpha")).unwrap();
        client.renew_lease("alpha", 60_000).unwrap();
        assert!(client.referrals().unwrap().version > 0);
    }

    #[test]
    fn malformed_registration_rejected() {
        let (net, _client) = setup();
        let resp = soc_http::mem::Transport::send(
            &net,
            soc_http::Request::post("mem://dir-a/services", Vec::new())
                .with_text("application/json", "{\"id\": \"x\"}"),
        )
        .unwrap();
        assert_eq!(resp.status, Status::UNPROCESSABLE);
        let resp = soc_http::mem::Transport::send(
            &net,
            soc_http::Request::post("mem://dir-a/services", Vec::new())
                .with_text("application/json", "{nope"),
        )
        .unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
    }

    #[test]
    fn lease_lifecycle_over_http() {
        let (_net, client) = setup();
        client.register(&svc("credit#0")).unwrap();
        client.register(&svc("credit#1")).unwrap();

        // Nothing live until someone renews; version starts at 0.
        let snap = client.leases().unwrap();
        assert_eq!(snap, LeaseSnapshot { version: 0, live: vec![], endpoints: vec![] });

        // First renewals bump the version once each ('#' in the id must
        // survive percent-encoding through the router).
        let v1 = client.renew_lease("credit#0", 60_000).unwrap();
        let v2 = client.renew_lease_at("credit#1", 60_000, Some("http://127.0.0.1:7001")).unwrap();
        assert!(v2 > v1);
        let snap = client.leases().unwrap();
        assert_eq!(snap.version, v2);
        assert_eq!(snap.live, vec!["credit#0".to_string(), "credit#1".to_string()]);
        // Only the advertising provider shows an endpoint; the URL
        // survives percent-encoding both ways.
        assert_eq!(
            snap.endpoints,
            vec![("credit#1".to_string(), "http://127.0.0.1:7001".to_string())]
        );
        // Advertising a *moved* endpoint bumps the version: shard maps
        // keyed on it must rebuild.
        let v3 = client.renew_lease_at("credit#1", 60_000, Some("http://127.0.0.1:7002")).unwrap();
        assert!(v3 > v2);
        assert_eq!(client.leases().unwrap().endpoints[0].1, "http://127.0.0.1:7002");

        // Steady-state renewal of an already-live id: same version.
        assert_eq!(client.renew_lease("credit#0", 60_000).unwrap(), v3);

        // Revocation removes the id and bumps the version.
        client.revoke_lease("credit#0").unwrap();
        let snap = client.leases().unwrap();
        assert!(snap.version > v3);
        assert_eq!(snap.live, vec!["credit#1".to_string()]);

        // Revoking a lease that isn't live is a 404, as is renewing an
        // unregistered service.
        assert_eq!(client.revoke_lease("credit#0").unwrap_err().status(), Some(Status::NOT_FOUND));
        assert_eq!(
            client.renew_lease("ghost", 1_000).unwrap_err().status(),
            Some(Status::NOT_FOUND)
        );
    }

    #[test]
    fn fenced_lease_needs_no_descriptor() {
        let (_net, client) = setup();
        // An ordinary renewal for an unregistered id is a 404 …
        assert_eq!(
            client.renew_lease("store-0", 1_000).unwrap_err().status(),
            Some(Status::NOT_FOUND)
        );
        // … but a fenced renewal succeeds and advertises an endpoint.
        let epoch =
            client.renew_fenced_lease("store-0", 60_000, Some("http://127.0.0.1:9001")).unwrap();
        assert!(epoch > 0);
        let snap = client.leases().unwrap();
        assert_eq!(snap.live, vec!["store-0".to_string()]);
        assert_eq!(
            snap.endpoints,
            vec![("store-0".to_string(), "http://127.0.0.1:9001".to_string())]
        );
        // Steady-state renewal keeps the epoch; a second joining node
        // bumps it — the epoch is the lease-table version.
        assert_eq!(client.renew_fenced_lease("store-0", 60_000, None).unwrap(), epoch);
        let e2 =
            client.renew_fenced_lease("store-1", 60_000, Some("http://127.0.0.1:9002")).unwrap();
        assert!(e2 > epoch);
    }

    #[test]
    fn unregister_revokes_lease() {
        let (_net, client) = setup();
        client.register(&svc("gone")).unwrap();
        client.renew_lease("gone", 60_000).unwrap();
        assert_eq!(client.leases().unwrap().live, vec!["gone".to_string()]);
        client.unregister("gone").unwrap();
        assert!(client.leases().unwrap().live.is_empty());
    }

    #[test]
    fn search_requires_query() {
        let (net, _client) = setup();
        let resp =
            soc_http::mem::Transport::send(&net, soc_http::Request::get("mem://dir-a/search"))
                .unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
    }
}

#[cfg(test)]
mod semantic_tests {
    use super::*;
    use crate::descriptor::Binding;
    use soc_http::MemNetwork;

    #[test]
    fn semantic_search_expands_subclasses_over_http() {
        let net = MemNetwork::new();
        let repo = Repository::new();
        for (id, cat) in
            [("enc", "cryptography"), ("login", "authentication"), ("cart", "commerce")]
        {
            repo.publish(
                ServiceDescriptor::new(id, id, &format!("mem://s/{id}"), Binding::Rest)
                    .category(cat),
            )
            .unwrap();
        }
        let (dir, _) = DirectoryService::new(repo, vec![]);
        net.host("dir", dir);
        let client = DirectoryClient::new(Arc::new(net), "mem://dir");
        // "security" has no exact matches, but subsumes two services.
        let hits = client.semantic_search("security").unwrap();
        let ids: Vec<&str> = hits.iter().map(|h| h.id.as_str()).collect();
        assert_eq!(ids, vec!["enc", "login"]);
        // The root class subsumes everything.
        assert_eq!(client.semantic_search("service").unwrap().len(), 3);
        // Unknown class: only exact matches (none).
        assert!(client.semantic_search("quantum").unwrap().is_empty());
        // Keyword search would have missed these entirely.
        assert!(client.search("security").unwrap().is_empty());
    }
}
