//! A reusable sense-reversing barrier.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::{Condvar, Mutex};

/// A cyclic barrier for a fixed party count, using sense reversal so it
/// can be reused round after round without re-initialization.
///
/// The classic lecture construction: each round flips a shared "sense"
/// bit; arrivals decrement a counter, and the last arrival resets the
/// counter and flips the sense, releasing everyone spinning/sleeping on
/// the old sense.
pub struct SenseBarrier {
    parties: usize,
    remaining: AtomicUsize,
    sense: AtomicBool,
    lock: Mutex<()>,
    cond: Condvar,
}

impl SenseBarrier {
    /// A barrier for `parties` threads. Panics if zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        SenseBarrier {
            parties,
            remaining: AtomicUsize::new(parties),
            sense: AtomicBool::new(false),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// Number of participating threads.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Arrive and wait for the rest of the round. Returns `true` for the
    /// single "leader" arrival that completed the round.
    pub fn wait(&self) -> bool {
        let my_sense = !self.sense.load(Ordering::Acquire);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Leader: reset for the next round, then flip the sense.
            self.remaining.store(self.parties, Ordering::Release);
            let _g = self.lock.lock();
            self.sense.store(my_sense, Ordering::Release);
            self.cond.notify_all();
            true
        } else {
            let mut g = self.lock.lock();
            while self.sense.load(Ordering::Acquire) != my_sense {
                self.cond.wait(&mut g);
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn single_party_never_blocks() {
        let b = SenseBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    fn releases_all_parties_each_round() {
        const PARTIES: usize = 4;
        const ROUNDS: usize = 10;
        let b = Arc::new(SenseBarrier::new(PARTIES));
        let phase = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..PARTIES {
            let (b, phase) = (b.clone(), phase.clone());
            handles.push(thread::spawn(move || {
                for round in 0..ROUNDS {
                    // Everyone must observe the same phase inside a round.
                    assert_eq!(phase.load(Ordering::SeqCst), round);
                    if b.wait() {
                        phase.fetch_add(1, Ordering::SeqCst);
                    }
                    b.wait(); // second barrier so the increment is visible
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(phase.load(Ordering::SeqCst), ROUNDS);
    }

    #[test]
    fn exactly_one_leader_per_round() {
        const PARTIES: usize = 3;
        let b = Arc::new(SenseBarrier::new(PARTIES));
        let leaders = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..PARTIES {
            let (b, leaders) = (b.clone(), leaders.clone());
            handles.push(thread::spawn(move || {
                for _ in 0..5 {
                    if b.wait() {
                        leaders.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 5);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_rejected() {
        let _ = SenseBarrier::new(0);
    }
}
