//! Compact and pretty serialization.

use crate::value::Value;

/// Serialize `v`; `pretty` adds two-space indentation and newlines.
pub fn to_string(v: &Value, pretty: bool) -> String {
    let mut out = String::new();
    write_value(v, pretty, 0, &mut out);
    out
}

fn write_value(v: &Value, pretty: bool, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(pretty, depth + 1, out);
                write_value(item, pretty, depth + 1, out);
            }
            newline_indent(pretty, depth, out);
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(pretty, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(val, pretty, depth + 1, out);
            }
            newline_indent(pretty, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(pretty: bool, depth: usize, out: &mut String) {
    if pretty {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use crate::{json, Value};

    #[test]
    fn compact_form() {
        let v = json!({ "a": [1, 2], "b": "x\ny", "c": null });
        assert_eq!(v.to_compact(), r#"{"a":[1,2],"b":"x\ny","c":null}"#);
    }

    #[test]
    fn pretty_form() {
        let v = json!({ "a": [1] });
        assert_eq!(v.to_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(json!({}).to_pretty(), "{}");
        assert_eq!(json!([]).to_pretty(), "[]");
    }

    #[test]
    fn control_chars_escaped() {
        let v = Value::from("\u{1}\u{8}\u{c}");
        assert_eq!(v.to_compact(), "\"\\u0001\\b\\f\"");
        assert_eq!(Value::parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn floats_keep_distinguishing_decimal() {
        assert_eq!(Value::from(2.0).to_compact(), "2.0");
        assert_eq!(Value::from(2.5).to_compact(), "2.5");
        assert_eq!(Value::from(2i64).to_compact(), "2");
    }

    #[test]
    fn round_trip_both_forms() {
        let v = json!({ "s": "héllo 😀", "n": [1.5, (-3), 1e20], "t": true });
        assert_eq!(Value::parse(&v.to_compact()).unwrap(), v);
        assert_eq!(Value::parse(&v.to_pretty()).unwrap(), v);
    }
}
