/root/repo/target/release/deps/soc_webapp-37a4869ccbfb7899.d: crates/soc-webapp/src/lib.rs crates/soc-webapp/src/account_app.rs crates/soc-webapp/src/session.rs crates/soc-webapp/src/templates.rs crates/soc-webapp/src/viewstate.rs

/root/repo/target/release/deps/libsoc_webapp-37a4869ccbfb7899.rlib: crates/soc-webapp/src/lib.rs crates/soc-webapp/src/account_app.rs crates/soc-webapp/src/session.rs crates/soc-webapp/src/templates.rs crates/soc-webapp/src/viewstate.rs

/root/repo/target/release/deps/libsoc_webapp-37a4869ccbfb7899.rmeta: crates/soc-webapp/src/lib.rs crates/soc-webapp/src/account_app.rs crates/soc-webapp/src/session.rs crates/soc-webapp/src/templates.rs crates/soc-webapp/src/viewstate.rs

crates/soc-webapp/src/lib.rs:
crates/soc-webapp/src/account_app.rs:
crates/soc-webapp/src/session.rs:
crates/soc-webapp/src/templates.rs:
crates/soc-webapp/src/viewstate.rs:
