/root/repo/target/debug/examples/service_marketplace-d087a66f277d688a.d: examples/service_marketplace.rs

/root/repo/target/debug/examples/service_marketplace-d087a66f277d688a: examples/service_marketplace.rs

examples/service_marketplace.rs:
