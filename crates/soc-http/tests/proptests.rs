//! Property tests for the HTTP substrate: wire codec round-trips,
//! URL/form encoding laws, and cookie handling.

use std::io::BufReader;

use proptest::prelude::*;
use soc_http::codec::{self, DEFAULT_BODY_LIMIT};
use soc_http::url::{encode_form, parse_form, percent_decode, percent_encode, Url};
use soc_http::{Headers, Method, Request, Response, Status};

fn method_strategy() -> impl Strategy<Value = Method> {
    prop_oneof![
        Just(Method::Get),
        Just(Method::Post),
        Just(Method::Put),
        Just(Method::Delete),
        Just(Method::Head),
        Just(Method::Options),
        Just(Method::Patch),
    ]
}

fn header_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec(("[A-Za-z][A-Za-z0-9-]{0,12}", "[ -~&&[^\r\n]]{0,24}"), 0..5)
        .prop_map(|pairs| {
            pairs
                .into_iter()
                .filter(|(k, _)| {
                    // Reserved names the codec manages itself.
                    !k.eq_ignore_ascii_case("content-length")
                        && !k.eq_ignore_ascii_case("transfer-encoding")
                        && !k.eq_ignore_ascii_case("host")
                })
                .map(|(k, v)| (k, v.trim().to_string()))
                .collect()
        })
}

proptest! {
    #[test]
    fn request_wire_round_trip(
        method in method_strategy(),
        path in "/[a-z0-9/._-]{0,24}",
        headers in header_strategy(),
        body in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut req = Request::new(method, path.clone()).with_body_bytes(body.clone());
        for (k, v) in &headers {
            req.headers.add(k.as_str(), v.as_str());
        }
        let mut wire = Vec::new();
        codec::write_request(&mut wire, &req, Some("h")).unwrap();
        let parsed = codec::read_request(&mut BufReader::new(&wire[..]), DEFAULT_BODY_LIMIT).unwrap();
        prop_assert_eq!(parsed.method, method);
        prop_assert_eq!(parsed.target, path);
        prop_assert_eq!(parsed.body, body);
        for (k, v) in &headers {
            prop_assert!(
                parsed.headers.get_all(k).any(|pv| pv == v),
                "header {k:?}={v:?} lost in transit"
            );
        }
    }

    #[test]
    fn response_wire_round_trip(
        code in 100u16..599,
        body in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let resp = Response::new(Status(code)).with_body_bytes(body.clone());
        let mut wire = Vec::new();
        codec::write_response(&mut wire, &resp).unwrap();
        let parsed =
            codec::read_response(&mut BufReader::new(&wire[..]), DEFAULT_BODY_LIMIT).unwrap();
        prop_assert_eq!(parsed.status.0, code);
        prop_assert_eq!(parsed.body, body);
    }

    #[test]
    fn chunked_decoding_matches_plain_body(
        body in proptest::collection::vec(any::<u8>(), 0..800),
        chunk in 1usize..64,
    ) {
        let mut wire = b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        wire.extend_from_slice(&codec::encode_chunked(&body, chunk));
        let parsed = codec::read_request(&mut BufReader::new(&wire[..]), DEFAULT_BODY_LIMIT).unwrap();
        prop_assert_eq!(parsed.body, body);
    }

    #[test]
    fn codec_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = codec::read_request(&mut BufReader::new(&bytes[..]), 1024);
        let _ = codec::read_response(&mut BufReader::new(&bytes[..]), 1024);
    }

    #[test]
    fn percent_encoding_round_trip(s in "[ -~é中\\n]{0,48}") {
        prop_assert_eq!(percent_decode(&percent_encode(&s)), s);
    }

    #[test]
    fn form_encoding_round_trip(
        pairs in proptest::collection::vec(("[a-z]{1,8}", "[ -~]{0,16}"), 0..6),
    ) {
        let fields: Vec<(String, String)> = pairs;
        let enc = encode_form(&fields);
        prop_assert_eq!(parse_form(&enc), fields);
    }

    #[test]
    fn url_display_reparses(
        host in "[a-z][a-z0-9.-]{0,16}",
        port in 1u16..65535,
        path in "/[a-z0-9/._-]{0,16}",
    ) {
        let raw = format!("http://{host}:{port}{path}");
        let url = Url::parse(&raw).unwrap();
        let again = Url::parse(&url.to_string()).unwrap();
        prop_assert_eq!(url, again);
    }

    #[test]
    fn headers_set_then_get(k in "[A-Za-z-]{1,10}", v in "[ -~]{0,20}") {
        let mut h = Headers::new();
        h.set(k.as_str(), v.trim());
        prop_assert_eq!(h.get(&k.to_ascii_uppercase()), Some(v.trim()));
        prop_assert_eq!(h.get_all(&k).count(), 1);
    }
}
