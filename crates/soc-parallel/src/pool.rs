//! A work-stealing thread pool with rayon-shaped entry points.
//!
//! Architecture (one of the course's TBB talking points, rebuilt):
//! a global injector queue feeds per-worker local deques; idle workers
//! steal from the injector first, then from siblings, then park on a
//! condition variable. `join` uses a *claimable* second closure so the
//! caller can run it inline when no worker got to it first — the
//! fork/join construction that makes nested parallelism deadlock-free.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;

use crossbeam::deque::{Injector, Steal, Stealer, Worker as LocalQueue};
use parking_lot::{Condvar, Mutex};

use crate::sync::ManualResetEvent;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Inner {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    sleep_lock: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    threads: usize,
}

impl Inner {
    fn push(&self, job: Job) {
        self.injector.push(job);
        let _g = self.sleep_lock.lock();
        self.wake.notify_one();
    }

    /// Steal one job from anywhere (injector first, then siblings).
    fn find_job(&self, local: Option<&LocalQueue<Job>>) -> Option<Job> {
        if let Some(local) = local {
            if let Some(job) = local.pop() {
                return Some(job);
            }
        }
        loop {
            match local
                .map(|l| self.injector.steal_batch_and_pop(l))
                .unwrap_or_else(|| self.injector.steal())
            {
                Steal::Success(job) => return Some(job),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        for stealer in &self.stealers {
            loop {
                match stealer.steal() {
                    Steal::Success(job) => return Some(job),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }
}

/// A fixed-size work-stealing thread pool.
///
/// Dropping the pool signals shutdown; queued jobs may be abandoned, so
/// always [`TaskHandle::join`] work you need the result of.
pub struct ThreadPool {
    inner: Arc<Inner>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Create a pool with `threads` workers (panics on zero).
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "thread pool needs at least one thread");
        let locals: Vec<LocalQueue<Job>> = (0..threads).map(|_| LocalQueue::new_fifo()).collect();
        let stealers = locals.iter().map(|l| l.stealer()).collect();
        let inner = Arc::new(Inner {
            injector: Injector::new(),
            stealers,
            sleep_lock: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            threads,
        });
        let handles = locals
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let inner = inner.clone();
                thread::Builder::new()
                    .name(format!("soc-worker-{i}"))
                    .spawn(move || worker_loop(inner, local))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool { inner, handles }
    }

    /// A pool sized to the host's available parallelism.
    pub fn new_default() -> Self {
        let n = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ThreadPool::new(n)
    }

    /// A lazily created process-wide pool for callers that do not manage
    /// their own.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(ThreadPool::new_default)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Submit a job, returning a handle to its result. Panics inside the
    /// job are captured and re-raised by [`TaskHandle::join`].
    pub fn spawn<T, F>(&self, f: F) -> TaskHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let state =
            Arc::new(TaskState { result: Mutex::new(None), done: ManualResetEvent::new(false) });
        let s2 = state.clone();
        self.inner.push(Box::new(move || {
            let out = catch_unwind(AssertUnwindSafe(f));
            *s2.result.lock() = Some(out);
            s2.done.set();
        }));
        TaskHandle { state }
    }

    /// Submit a fire-and-forget job (panics are swallowed after being
    /// printed by the worker's catch).
    pub fn spawn_detached<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.inner.push(Box::new(f));
    }

    /// Run two closures in parallel and return both results. `a` runs on
    /// the calling thread; `b` is offered to the pool but *reclaimed* and
    /// run inline when no worker picked it up — so `join` can never
    /// deadlock, even when every worker is busy or the pool is this
    /// thread's own.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        struct ClaimState<B, RB> {
            // The pending closure; whoever takes it runs it.
            b: Mutex<Option<B>>,
            result: Mutex<Option<thread::Result<RB>>>,
            done: ManualResetEvent,
        }
        let state: Arc<ClaimState<B, RB>> = Arc::new(ClaimState {
            b: Mutex::new(Some(b)),
            result: Mutex::new(None),
            done: ManualResetEvent::new(false),
        });

        // SAFETY: `b` and its captures only need to live until this stack
        // frame returns. If a worker claims `b`, we block on `done` below
        // before returning. If *we* claim `b`, the slot the queued job
        // later observes is `None` — the job then only touches the
        // heap-allocated Arc state, never borrowed data.
        let job: Box<dyn FnOnce() + Send> = {
            let state = state.clone();
            Box::new(move || {
                let claimed = state.b.lock().take();
                if let Some(b) = claimed {
                    let out = catch_unwind(AssertUnwindSafe(b));
                    *state.result.lock() = Some(out);
                }
                state.done.set();
            })
        };
        let job: Job = unsafe { std::mem::transmute(job) };
        self.inner.push(job);

        let ra = a();

        let reclaimed = state.b.lock().take();
        let rb = if let Some(b) = reclaimed {
            // No worker got to `b` yet: run it inline. The queued job will
            // find the slot empty and just signal.
            b()
        } else {
            // A worker owns `b`; help the pool while waiting for it.
            self.help_until(&state.done);
            match state.result.lock().take() {
                Some(Ok(rb)) => rb,
                Some(Err(payload)) => resume_unwind(payload),
                None => unreachable!("done signalled without a result"),
            }
        };
        (ra, rb)
    }

    /// While waiting for `event`, execute other queued jobs so a blocked
    /// caller never starves the pool (lets nested `join`/`scope` make
    /// progress even on a single worker).
    fn help_until(&self, event: &ManualResetEvent) {
        loop {
            if event.is_set() {
                return;
            }
            if let Some(job) = self.inner.find_job(None) {
                job();
            } else if event.wait_timeout(Duration::from_millis(1)) {
                return;
            }
        }
    }

    /// Structured fork/join: spawn borrowed tasks inside `f`; all of them
    /// complete before `scope` returns. The first panicking task's
    /// payload is re-raised here after the others finish.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            pending: AtomicUsize::new(1),
            done: ManualResetEvent::new(false),
            panic: Mutex::new(None),
            _env: std::marker::PhantomData,
        };
        let out = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Drop the scope's own "task".
        scope.complete_one();
        self.help_until(&scope.done);
        if let Some(payload) = scope.panic.lock().take() {
            resume_unwind(payload);
        }
        match out {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _g = self.inner.sleep_lock.lock();
            self.inner.wake.notify_all();
        }
        // The last owner of a pool can be one of its own detached jobs
        // (e.g. a structure holding the pool whose final Arc lives in a
        // job). Joining the current thread panics, so detach our own
        // handle — this worker exits by itself once the running job
        // returns and it observes `shutdown`.
        let me = thread::current().id();
        for h in self.handles.drain(..) {
            if h.thread().id() == me {
                drop(h);
            } else {
                let _ = h.join();
            }
        }
    }
}

fn worker_loop(inner: Arc<Inner>, local: LocalQueue<Job>) {
    loop {
        if let Some(job) = inner.find_job(Some(&local)) {
            // A panicking job must not kill the worker; handles capture
            // payloads themselves, detached jobs get reported here.
            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                eprintln!("soc-parallel: detached job panicked");
            }
            continue;
        }
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut g = inner.sleep_lock.lock();
        // Re-check under the lock to avoid sleeping through a push.
        if inner.shutdown.load(Ordering::Acquire) || !inner.injector.is_empty() {
            continue;
        }
        inner.wake.wait_for(&mut g, Duration::from_millis(10));
    }
}

struct TaskState<T> {
    result: Mutex<Option<thread::Result<T>>>,
    done: ManualResetEvent,
}

/// Handle to a spawned task's result.
pub struct TaskHandle<T> {
    state: Arc<TaskState<T>>,
}

impl<T> TaskHandle<T> {
    /// Block until the task finishes; re-raises the task's panic.
    pub fn join(self) -> T {
        self.state.done.wait();
        match self.state.result.lock().take() {
            Some(Ok(v)) => v,
            Some(Err(payload)) => resume_unwind(payload),
            None => unreachable!("task signalled done without a result"),
        }
    }

    /// Has the task finished (successfully or not)?
    pub fn is_done(&self) -> bool {
        self.state.done.is_set()
    }

    /// Wait with a timeout; `Ok` with the value, or `Err(self)` so the
    /// caller can retry.
    pub fn join_timeout(self, timeout: Duration) -> Result<T, TaskHandle<T>> {
        if self.state.done.wait_timeout(timeout) {
            Ok(self.join())
        } else {
            Err(self)
        }
    }
}

/// Scope for structured borrowed tasks; see [`ThreadPool::scope`].
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope ThreadPool,
    pending: AtomicUsize,
    done: ManualResetEvent,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    _env: std::marker::PhantomData<&'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task that may borrow from `'env`. The scope guarantees it
    /// completes (or its panic is re-raised) before `scope()` returns.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::AcqRel);
        // SAFETY: `scope()` blocks until `pending` reaches zero, so the
        // borrows inside `f` (bounded by 'scope/'env) outlive the task.
        let this: &'scope Scope<'scope, 'env> = self;
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = this.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            this.complete_one();
        });
        let job: Job = unsafe { std::mem::transmute(job) };
        self.pool.inner.push(job);
    }

    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.done.set();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn spawn_returns_result() {
        let pool = ThreadPool::new(2);
        let h = pool.spawn(|| 6 * 7);
        assert_eq!(h.join(), 42);
    }

    #[test]
    fn spawn_many_tasks() {
        let pool = ThreadPool::new(4);
        let handles: Vec<_> = (0..100).map(|i| pool.spawn(move || i * i)).collect();
        let sum: u64 = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(sum, (0..100u64).map(|i| i * i).sum());
    }

    #[test]
    fn join_runs_both_sides() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| "left".to_string(), || 99);
        assert_eq!(a, "left");
        assert_eq!(b, 99);
    }

    #[test]
    fn nested_join_does_not_deadlock_on_one_thread() {
        let pool = ThreadPool::new(1);
        fn fib(pool: &ThreadPool, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
            a + b
        }
        assert_eq!(fib(&pool, 12), 144);
    }

    #[test]
    fn join_propagates_right_panic() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| 1, || -> i32 { panic!("right side failed") })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn spawn_panic_propagates_on_join() {
        let pool = ThreadPool::new(2);
        let h = pool.spawn(|| -> u8 { panic!("task died") });
        assert!(catch_unwind(AssertUnwindSafe(|| h.join())).is_err());
        // Pool still works afterwards.
        assert_eq!(pool.spawn(|| 5).join(), 5);
    }

    #[test]
    fn scope_tasks_borrow_environment() {
        let pool = ThreadPool::new(3);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..10 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn scope_waits_for_nested_spawns() {
        let pool = ThreadPool::new(2);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                counter.fetch_add(1, Ordering::Relaxed);
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn scope_propagates_task_panic() {
        let pool = ThreadPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("scoped task failed"));
            });
        }));
        assert!(r.is_err());
    }

    #[test]
    fn join_timeout_returns_handle() {
        let pool = ThreadPool::new(1);
        let gate = Arc::new(ManualResetEvent::new(false));
        let g2 = gate.clone();
        let h = pool.spawn(move || g2.wait());
        let h = h.join_timeout(Duration::from_millis(10)).unwrap_err();
        gate.set();
        h.join();
    }

    #[test]
    fn global_pool_is_usable() {
        assert_eq!(ThreadPool::global().spawn(|| 3).join(), 3);
    }

    #[test]
    fn drop_shuts_down_workers() {
        let pool = ThreadPool::new(2);
        pool.spawn(|| 1).join();
        drop(pool); // must not hang
    }

    #[test]
    fn pool_can_be_dropped_from_its_own_worker() {
        // A detached job holding the last reference to its own pool:
        // the drop then runs *on a worker*, which must detach itself
        // rather than self-join.
        let pool = Arc::new(ThreadPool::new(2));
        let done = Arc::new(ManualResetEvent::new(false));
        let p2 = pool.clone();
        let d2 = done.clone();
        pool.spawn_detached(move || {
            std::thread::sleep(Duration::from_millis(20));
            drop(p2);
            d2.set();
        });
        drop(pool);
        assert!(done.wait_timeout(Duration::from_secs(5)), "self-drop wedged the worker");
    }
}
