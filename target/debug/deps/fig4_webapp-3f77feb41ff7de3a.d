/root/repo/target/debug/deps/fig4_webapp-3f77feb41ff7de3a.d: crates/soc-bench/src/bin/fig4_webapp.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_webapp-3f77feb41ff7de3a.rmeta: crates/soc-bench/src/bin/fig4_webapp.rs Cargo.toml

crates/soc-bench/src/bin/fig4_webapp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
