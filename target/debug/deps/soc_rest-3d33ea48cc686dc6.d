/root/repo/target/debug/deps/soc_rest-3d33ea48cc686dc6.d: crates/soc-rest/src/lib.rs crates/soc-rest/src/client.rs crates/soc-rest/src/middleware.rs crates/soc-rest/src/negotiate.rs crates/soc-rest/src/resource.rs crates/soc-rest/src/router.rs

/root/repo/target/debug/deps/libsoc_rest-3d33ea48cc686dc6.rlib: crates/soc-rest/src/lib.rs crates/soc-rest/src/client.rs crates/soc-rest/src/middleware.rs crates/soc-rest/src/negotiate.rs crates/soc-rest/src/resource.rs crates/soc-rest/src/router.rs

/root/repo/target/debug/deps/libsoc_rest-3d33ea48cc686dc6.rmeta: crates/soc-rest/src/lib.rs crates/soc-rest/src/client.rs crates/soc-rest/src/middleware.rs crates/soc-rest/src/negotiate.rs crates/soc-rest/src/resource.rs crates/soc-rest/src/router.rs

crates/soc-rest/src/lib.rs:
crates/soc-rest/src/client.rs:
crates/soc-rest/src/middleware.rs:
crates/soc-rest/src/negotiate.rs:
crates/soc-rest/src/resource.rs:
crates/soc-rest/src/router.rs:
