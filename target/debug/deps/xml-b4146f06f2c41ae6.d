/root/repo/target/debug/deps/xml-b4146f06f2c41ae6.d: crates/soc-bench/benches/xml.rs Cargo.toml

/root/repo/target/debug/deps/libxml-b4146f06f2c41ae6.rmeta: crates/soc-bench/benches/xml.rs Cargo.toml

crates/soc-bench/benches/xml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
