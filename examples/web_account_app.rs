//! The Figure 4 web application, driven end to end: subscribe → credit
//! check → user ID → password → login → session-guarded home, with the
//! resulting `account.xml` printed at the end.
//!
//! ```sh
//! cargo run --example web_account_app
//! ```

use std::sync::Arc;

use soc::http::mem::Transport;
use soc::http::url::encode_form;
use soc::http::{MemNetwork, Request, Response};
use soc::services::mortgage::CreditScoreService;
use soc::webapp::account_app::{AccountApp, MIN_SCORE};

fn post_form(net: &MemNetwork, url: &str, fields: &[(&str, &str)]) -> Response {
    let body = encode_form(
        &fields.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect::<Vec<_>>(),
    );
    net.send(Request::post(url, Vec::new()).with_text("application/x-www-form-urlencoded", &body))
        .expect("app reachable")
}

fn main() {
    let net = MemNetwork::new();
    soc::services::bindings::host_all(&net, 4);
    let app = AccountApp::new(Arc::new(net.clone()), "mem://services.asu/credit/score");
    let store = app.store();
    net.host("bank.example", app);

    // Find applicants on both sides of the approval line (the score
    // service is deterministic, so this is a plain search).
    let good_ssn = (0..)
        .map(|i| format!("{i:09}"))
        .find(|s| CreditScoreService::score(s) >= MIN_SCORE)
        .unwrap();
    let bad_ssn = (0..)
        .map(|i| format!("{i:09}"))
        .find(|s| CreditScoreService::score(s) < MIN_SCORE)
        .unwrap();

    // A rejected applicant ("You do not qualify").
    let resp = post_form(
        &net,
        "mem://bank.example/subscribe",
        &[
            ("name", "Bob Turned-Down"),
            ("ssn", &bad_ssn),
            ("address", "2 Oak"),
            ("dob", "1985-03-04"),
        ],
    );
    println!(
        "Bob (score {}): {}",
        CreditScoreService::score(&bad_ssn),
        if resp.text_body().unwrap().contains("do not qualify") { "rejected" } else { "?" }
    );

    // An approved applicant, full flow.
    let resp = post_form(
        &net,
        "mem://bank.example/subscribe",
        &[
            ("name", "Ann Approved"),
            ("ssn", &good_ssn),
            ("address", "1 Mill Ave"),
            ("dob", "1990-01-02"),
        ],
    );
    let body = resp.text_body().unwrap();
    let start = body.find("<b>U").unwrap() + 3;
    let end = body[start..].find("</b>").unwrap() + start;
    let user_id = body[start..end].to_string();
    println!("Ann (score {}): approved, issued {user_id}", CreditScoreService::score(&good_ssn));

    // Weak password is rejected, strong accepted.
    let weak = post_form(
        &net,
        "mem://bank.example/password",
        &[("user", &user_id), ("password", "short"), ("retype", "short")],
    );
    println!("weak password: {}", weak.text_body().unwrap().contains("weak password"));
    post_form(
        &net,
        "mem://bank.example/password",
        &[("user", &user_id), ("password", "Str0ngPass"), ("retype", "Str0ngPass")],
    );

    // Login and visit the session-guarded home page.
    let login = post_form(
        &net,
        "mem://bank.example/login",
        &[("user", &user_id), ("password", "Str0ngPass")],
    );
    let cookie = login.headers.get("Set-Cookie").unwrap().split(';').next().unwrap().to_string();
    let home =
        net.send(Request::get("mem://bank.example/home").with_header("Cookie", &cookie)).unwrap();
    println!("home page: {}", home.text_body().unwrap());

    // Figure 4's data pane: account.xml as the provider stores it.
    println!("\naccount.xml:\n{}", store.to_account_xml());
}
