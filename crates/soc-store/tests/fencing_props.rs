//! Fencing property tests: random interleavings of lease expiry,
//! renewal, replica partitions, log shipping, promotion, and
//! late-arriving replication over a two-node pair, holding the
//! split-brain invariants from the `fence` module docs:
//!
//! - a primary whose lease has lapsed refuses every write
//!   ([`StoreError::Fenced`]) and acknowledges none;
//! - after a promotion moves the fleet to a newer epoch, a shipment at
//!   the old primary's epoch is refused ([`StoreError::StaleEpoch`]);
//! - the replica's stream is always a prefix of the primary's log, and
//!   a drained stream is byte-identical (state CRC equality);
//! - every acknowledged write survives promotion with its value intact
//!   and its version never regressing.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use soc_http::{MemNetwork, Transport};
use soc_json::{json, Value};
use soc_rest::RestClient;
use soc_store::wal::Lsn;
use soc_store::{KvMachine, ShardMap, ShardNode, StoreError, StoreNode, StoreNodeConfig, TempDir};
use std::collections::HashMap;
use std::time::Duration;

const A: &str = "prop-a";
const B: &str = "prop-b";
const TTL: Duration = Duration::from_secs(60);

#[derive(Debug, Clone)]
enum Op {
    /// A client write through the current legitimate primary.
    Write(usize, i64),
    /// The current primary's lease lapses (registry unreachable).
    ExpireLease,
    /// The current primary renews at its current epoch.
    RenewLease,
    /// The replica pulls the primary's outstanding tail.
    ShipTail,
    /// Cut (or heal) push replication to the replica.
    TogglePartition,
    /// Fail the old primary over to the replica under a newer epoch.
    Promote,
    /// The deposed primary ships a record at its pre-promotion epoch.
    LateShip,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Writes appear three times to weight the mix toward them.
    prop_oneof![
        (0usize..12, 0i64..1000).prop_map(|(k, v)| Op::Write(k, v)),
        (12usize..24, 0i64..1000).prop_map(|(k, v)| Op::Write(k, v)),
        (24usize..36, 0i64..1000).prop_map(|(k, v)| Op::Write(k, v)),
        Just(Op::ExpireLease),
        Just(Op::RenewLease),
        Just(Op::ShipTail),
        Just(Op::TogglePartition),
        Just(Op::Promote),
        Just(Op::LateShip),
    ]
}

struct Pair {
    net: Arc<MemNetwork>,
    a: StoreNode,
    b: StoreNode,
    _dirs: (TempDir, TempDir),
    /// Keys whose primary under the initial map is node A.
    a_keys: Vec<String>,
    /// Last acked `(value, version)` per key — the client's view.
    expected: HashMap<String, (Value, Lsn)>,
    /// A's applied LSN (every ack is one log record).
    a_applied: Lsn,
    promoted: bool,
    partitioned: bool,
}

impl Pair {
    fn new() -> Pair {
        let net = Arc::new(MemNetwork::new());
        let dir_a = TempDir::new("fence-props-a");
        let dir_b = TempDir::new("fence-props-b");
        let a = StoreNode::open(
            StoreNodeConfig::new(A),
            dir_a.path(),
            net.clone() as Arc<dyn Transport>,
        )
        .unwrap();
        let b = StoreNode::open(
            StoreNodeConfig::new(B),
            dir_b.path(),
            net.clone() as Arc<dyn Transport>,
        )
        .unwrap();
        net.host(A, a.router());
        net.host(B, b.router());
        let map = Arc::new(ShardMap::build(
            1,
            vec![
                ShardNode { id: A.into(), endpoint: format!("mem://{A}") },
                ShardNode { id: B.into(), endpoint: format!("mem://{B}") },
            ],
            2,
        ));
        assert!(a.set_map(map.clone()));
        assert!(b.set_map(map.clone()));
        a.fence().grant(1, TTL);
        // The ring decides which keys A primaries; writes go there.
        let a_keys: Vec<String> = (0..32)
            .map(|i| format!("fpk-{i}"))
            .filter(|k| map.primary(k).map(|n| n.id == A).unwrap_or(false))
            .collect();
        assert!(!a_keys.is_empty(), "hash ring gave node A no keys");
        Pair {
            net,
            a,
            b,
            _dirs: (dir_a, dir_b),
            a_keys,
            expected: HashMap::new(),
            a_applied: 0,
            promoted: false,
            partitioned: false,
        }
    }

    fn primary(&self) -> &StoreNode {
        if self.promoted {
            &self.b
        } else {
            &self.a
        }
    }

    /// Pull B's stream of A up to A's current applied LSN.
    fn drain(&self) -> Result<(), TestCaseError> {
        let mut stalls = 0;
        while self.b.replica_applied(A) < self.a_applied {
            let pulled = self
                .b
                .sync_from(&format!("mem://{A}"))
                .map_err(|e| TestCaseError::fail(format!("sync_from failed mid-drain: {e:?}")))?;
            // The stream must never run past the source's log.
            prop_assert!(self.b.replica_applied(A) <= self.a_applied, "stream overran the log");
            if pulled == 0 {
                stalls += 1;
                prop_assert!(stalls < 50, "drain stalled short of lsn {}", self.a_applied);
            }
        }
        Ok(())
    }

    /// Fail over to B: drain the tail, adopt A's keys, install the
    /// epoch-2 map, and fence both sides the way a rebalance would.
    fn promote(&mut self) -> Result<(), TestCaseError> {
        if self.partitioned {
            self.net.host(B, self.b.router());
            self.partitioned = false;
        }
        self.a.fence().expire_now();
        self.drain()?;
        self.b.promote(A).unwrap();
        let map2 = Arc::new(ShardMap::build(
            2,
            vec![ShardNode { id: B.into(), endpoint: format!("mem://{B}") }],
            1,
        ));
        prop_assert!(self.b.set_map(map2));
        self.b.fence().grant(2, TTL);
        self.promoted = true;
        // The deposed primary still holds the old map naming it owner —
        // but its lapsed lease must refuse the write anyway.
        let rogue = self.a.put(&self.a_keys[0], &json!({ "rogue": true }));
        prop_assert!(
            matches!(rogue, Err(StoreError::Fenced { .. })),
            "deposed primary acknowledged a write: {rogue:?}"
        );
        Ok(())
    }

    fn apply(&mut self, op: &Op) -> Result<(), TestCaseError> {
        match op {
            Op::Write(k, v) => {
                let key = self.a_keys[k % self.a_keys.len()].clone();
                let value = json!({ "v": (*v) });
                let valid = self.primary().fence().is_valid();
                match self.primary().put(&key, &value) {
                    Ok(lsn) => {
                        prop_assert!(valid, "write acked under a lapsed lease");
                        self.expected.insert(key, (value, lsn));
                        if !self.promoted {
                            self.a_applied = lsn;
                        }
                    }
                    Err(StoreError::Fenced { .. }) => {
                        prop_assert!(!valid, "write refused under a valid lease")
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e:?}"))),
                }
            }
            Op::ExpireLease => self.primary().fence().expire_now(),
            Op::RenewLease => {
                let f = self.primary().fence();
                f.grant(f.epoch(), TTL);
            }
            Op::ShipTail => {
                if !self.promoted {
                    self.drain()?;
                }
            }
            Op::TogglePartition => {
                if !self.promoted {
                    if self.partitioned {
                        self.net.host(B, self.b.router());
                    } else {
                        self.net.unhost(B);
                    }
                    self.partitioned = !self.partitioned;
                }
            }
            Op::Promote => {
                if !self.promoted {
                    self.promote()?;
                }
            }
            Op::LateShip => {
                if self.promoted {
                    // A shipment at the pre-promotion epoch: the fleet
                    // has moved to the epoch-2 map and A is no longer in
                    // it, so obeying this would be split-brain.
                    let cmd = KvMachine::put_command(&self.a_keys[0], &json!({ "late": true }));
                    let r = self.b.apply_shipped(A, 1, &[(self.a_applied + 1, cmd)]);
                    prop_assert!(
                        matches!(r, Err(StoreError::StaleEpoch { .. })),
                        "stale-epoch shipment was obeyed: {r:?}"
                    );
                }
            }
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of the elasticity events preserves the fencing
    /// and prefix-consistency invariants, and every acked write
    /// survives the final promotion.
    #[test]
    fn elasticity_interleavings_preserve_consistency(
        ops in vec(op_strategy(), 1..24),
    ) {
        let mut pair = Pair::new();
        for op in &ops {
            pair.apply(op)?;
        }

        if !pair.promoted {
            // Settle the pair and check the anti-entropy comparison: a
            // drained stream is byte-identical to the source's state.
            if pair.partitioned {
                pair.net.host(B, pair.b.router());
                pair.partitioned = false;
            }
            pair.a.fence().grant(1, TTL);
            pair.drain()?;
            prop_assert_eq!(pair.b.replica_applied(A), pair.a_applied);
            if pair.a_applied > 0 {
                let rest = RestClient::new(pair.net.clone() as Arc<dyn Transport>);
                let a_status = rest.get(&format!("mem://{A}/store/status")).unwrap();
                let b_status = rest.get(&format!("mem://{B}/store/status")).unwrap();
                prop_assert_eq!(
                    b_status.pointer(&format!("/stream_crcs/{A}")).and_then(Value::as_i64),
                    a_status.get("state_crc").and_then(Value::as_i64),
                    "drained stream diverged from the source state"
                );
            }
            pair.promote()?;
        }

        // Survival: every acked write is readable from the survivor at
        // its acked value and an equal-or-newer version.
        for (key, (value, ver)) in &pair.expected {
            match pair.b.get(key, 0) {
                Ok(Some((got, gv))) => {
                    prop_assert_eq!(&got, value, "value diverged for {}", key);
                    prop_assert!(gv >= *ver, "version regressed for {key}: {gv} < {ver}");
                }
                other => return Err(TestCaseError::fail(format!("acked {key} lost: {other:?}"))),
            }
        }
    }
}
