//! # soc-registry — service repository, directory, search, crawler, QoS
//!
//! Section V of the paper describes the ASU Repository of Services and
//! Applications: a self-hosted repository ("we develop services
//! according to the need of the course"), a *service directory* listing
//! services from other directories, a *service crawler* "that discovers
//! available services online", a registration page, and an availability
//! story motivated by flaky free public services. This crate implements
//! all of it:
//!
//! - [`descriptor`] — [`ServiceDescriptor`]: what a published service
//!   says about itself; XML and JSON codecs (registry documents).
//! - [`repository`] — [`Repository`]: publish / unpublish / lookup /
//!   category listing, with XML persistence (the repository document).
//! - [`search`] — [`search::SearchEngine`]: tokenized inverted index
//!   with TF-IDF ranking, plus a naive keyword scan for the bench
//!   comparison (the "service search engine" at `…/sse/`).
//! - [`directory`] — the directory's REST binding
//!   ([`directory::DirectoryService`]) and typed client
//!   ([`directory::DirectoryClient`]): register, list, get, search,
//!   and peer links to other directories.
//! - [`crawler`] — [`crawler::Crawler`]: breadth-first discovery across
//!   peer directories, deduplicating services and tolerating offline
//!   hosts.
//! - [`monitor`] — [`monitor::QosMonitor`]: availability/latency
//!   probing and lease-based liveness, reproducing the paper's
//!   availability complaints measurably.
//! - [`ontology`] — [`ontology::Ontology`]: a triple store with
//!   `subClassOf` subsumption, giving the directory semantic category
//!   matching (CSE446 unit 6, "Ontology and Semantic Web").

pub mod crawler;
pub mod descriptor;
pub mod directory;
pub mod monitor;
pub mod ontology;
pub mod repository;
pub mod search;

pub use descriptor::{Binding, ServiceDescriptor};
pub use repository::Repository;
