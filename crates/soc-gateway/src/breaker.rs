//! Per-upstream circuit breakers.
//!
//! A breaker watches the recent outcomes of one upstream replica and
//! trips (opens) when the failure rate over a sliding window crosses a
//! threshold. While open, requests are refused instantly — no point
//! queueing onto a dead replica, and the break gives it room to
//! recover. After a cool-down the breaker admits a few trial probes
//! (half-open); enough consecutive successes close it again, any
//! failure re-opens it.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Tuning knobs for one breaker.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Failure rate over the window at which the breaker opens
    /// (`0.5` = half the recent requests failed).
    pub failure_threshold: f64,
    /// Sliding-window length in requests.
    pub window: usize,
    /// Minimum observations before the threshold is consulted, so one
    /// early failure cannot trip a cold breaker.
    pub min_samples: usize,
    /// How long an open breaker waits before letting probes through.
    pub cool_down: Duration,
    /// Trial requests admitted while half-open; the same number of
    /// consecutive successes closes the breaker.
    pub half_open_probes: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 0.5,
            window: 10,
            min_samples: 5,
            cool_down: Duration::from_secs(1),
            half_open_probes: 2,
        }
    }
}

/// Where a breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; outcomes are being watched.
    Closed,
    /// Tripped: all traffic refused until the cool-down elapses.
    Open,
    /// Cooling down finished: a bounded number of probes may pass.
    HalfOpen,
}

impl BreakerState {
    /// Lower-case label for stats output.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Proof that [`CircuitBreaker::try_pass`] admitted a request, stamped
/// with the breaker's state epoch at admission time.
///
/// The epoch is what makes half-open accounting sound under
/// concurrency: a request admitted while the breaker was Closed may
/// complete *after* the breaker has opened and half-opened again.
/// Without the stamp, that straggler's completion would decrement
/// `probes_in_flight` (a slot it never took) and — if it happened to
/// succeed — count toward `probe_successes`, closing the breaker
/// without a single real probe having run. With the stamp, outcomes
/// from a previous era are recognized as stale news and dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pass {
    epoch: u64,
}

struct Inner {
    state: BreakerState,
    /// Bumped on every state transition; passes carry the epoch they
    /// were admitted under so stragglers cannot corrupt a later state.
    epoch: u64,
    outcomes: VecDeque<bool>,
    opened_at: Instant,
    probes_in_flight: usize,
    probe_successes: usize,
}

impl Inner {
    fn transition(&mut self, state: BreakerState) {
        self.state = state;
        self.epoch += 1;
    }
}

/// The breaker itself. Thread-safe; one per upstream endpoint.
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                epoch: 0,
                outcomes: VecDeque::new(),
                opened_at: Instant::now(),
                probes_in_flight: 0,
                probe_successes: 0,
            }),
        }
    }

    /// May a request go to this upstream right now? `Some(pass)` admits
    /// it — hand the pass back via [`CircuitBreaker::on_result`] (after
    /// sending) or [`CircuitBreaker::release_pass`] (if the request
    /// never went out). A half-open breaker admits at most
    /// `half_open_probes` concurrent trials.
    pub fn try_pass(&self) -> Option<Pass> {
        let mut g = self.inner.lock();
        self.tick(&mut g);
        match g.state {
            BreakerState::Closed => Some(Pass { epoch: g.epoch }),
            BreakerState::Open => None,
            BreakerState::HalfOpen => {
                if g.probes_in_flight < self.config.half_open_probes {
                    g.probes_in_flight += 1;
                    Some(Pass { epoch: g.epoch })
                } else {
                    None
                }
            }
        }
    }

    /// Give back a slot taken by [`CircuitBreaker::try_pass`] without
    /// sending a request — the load balancer admitted this upstream as
    /// a candidate but picked another. Without the release, unpicked
    /// half-open candidates would leak probe slots and wedge the
    /// breaker half-open forever. A pass from a previous epoch is
    /// ignored: the slot it names no longer exists.
    pub fn release_pass(&self, pass: Pass) {
        let mut g = self.inner.lock();
        if g.state == BreakerState::HalfOpen && pass.epoch == g.epoch {
            g.probes_in_flight = g.probes_in_flight.saturating_sub(1);
        }
    }

    /// Report the outcome of a request previously admitted by
    /// [`CircuitBreaker::try_pass`]. Outcomes whose pass predates the
    /// current epoch are dropped: the world they describe is gone.
    pub fn on_result(&self, pass: Pass, ok: bool) {
        let mut g = self.inner.lock();
        self.tick(&mut g);
        if pass.epoch != g.epoch {
            return;
        }
        match g.state {
            BreakerState::Closed => {
                g.outcomes.push_back(ok);
                while g.outcomes.len() > self.config.window {
                    g.outcomes.pop_front();
                }
                let samples = g.outcomes.len();
                if samples >= self.config.min_samples {
                    let failures = g.outcomes.iter().filter(|o| !**o).count();
                    if failures as f64 / samples as f64 >= self.config.failure_threshold {
                        g.transition(BreakerState::Open);
                        g.opened_at = Instant::now();
                        g.outcomes.clear();
                    }
                }
            }
            BreakerState::HalfOpen => {
                g.probes_in_flight = g.probes_in_flight.saturating_sub(1);
                if ok {
                    g.probe_successes += 1;
                    if g.probe_successes >= self.config.half_open_probes {
                        g.transition(BreakerState::Closed);
                        g.outcomes.clear();
                    }
                } else {
                    g.transition(BreakerState::Open);
                    g.opened_at = Instant::now();
                }
            }
            // Same-epoch Open is unreachable (every entry to Open bumps
            // the epoch), but harmless: stale news either way.
            BreakerState::Open => {}
        }
    }

    /// Current state, with the open→half-open transition applied if the
    /// cool-down has elapsed.
    pub fn state(&self) -> BreakerState {
        let mut g = self.inner.lock();
        self.tick(&mut g);
        g.state
    }

    fn tick(&self, g: &mut Inner) {
        if g.state == BreakerState::Open && g.opened_at.elapsed() >= self.config.cool_down {
            g.transition(BreakerState::HalfOpen);
            g.probes_in_flight = 0;
            g.probe_successes = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(cool_down_ms: u64) -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 0.5,
            window: 4,
            min_samples: 4,
            cool_down: Duration::from_millis(cool_down_ms),
            half_open_probes: 2,
        }
    }

    /// Admit-and-report in one step, for driving the breaker from tests.
    fn report(b: &CircuitBreaker, ok: bool) {
        let pass = b.try_pass().expect("breaker refused a test request");
        b.on_result(pass, ok);
    }

    #[test]
    fn opens_at_the_failure_threshold() {
        let b = CircuitBreaker::new(fast(1_000));
        for ok in [true, false, true, false] {
            report(&b, ok);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.try_pass().is_none());
    }

    #[test]
    fn too_few_samples_never_trip() {
        let b = CircuitBreaker::new(fast(1_000));
        report(&b, false);
        report(&b, false);
        report(&b, false);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_admits_bounded_probes_then_closes() {
        let b = CircuitBreaker::new(fast(20));
        for _ in 0..4 {
            report(&b, false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        let p1 = b.try_pass().unwrap();
        let p2 = b.try_pass().unwrap();
        assert!(b.try_pass().is_none(), "probe quota must be bounded");
        b.on_result(p1, true);
        b.on_result(p2, true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn release_pass_frees_an_unused_probe_slot() {
        let b = CircuitBreaker::new(fast(20));
        for _ in 0..4 {
            report(&b, false);
        }
        std::thread::sleep(Duration::from_millis(30));
        let _picked = b.try_pass().unwrap();
        let unpicked = b.try_pass().unwrap();
        assert!(b.try_pass().is_none());
        // One candidate was admitted but not picked: releasing its slot
        // lets the next probe through.
        b.release_pass(unpicked);
        assert!(b.try_pass().is_some());
    }

    #[test]
    fn half_open_failure_reopens() {
        let b = CircuitBreaker::new(fast(20));
        for _ in 0..4 {
            report(&b, false);
        }
        std::thread::sleep(Duration::from_millis(30));
        let p = b.try_pass().unwrap();
        b.on_result(p, false);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.try_pass().is_none());
    }

    #[test]
    fn window_slides_so_stale_history_does_not_count() {
        // Discriminates a sliding window from a cumulative rate: after
        // ten successes, three fresh failures are 3/13 cumulatively
        // (far under threshold) but 3/4 of the window — and must trip.
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 0.6,
            window: 4,
            min_samples: 2,
            cool_down: Duration::from_secs(1),
            half_open_probes: 2,
        });
        for _ in 0..10 {
            report(&b, true);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..3 {
            report(&b, false);
        }
        assert_eq!(b.state(), BreakerState::Open);
    }

    /// The straggler race, deterministically interleaved: a request
    /// admitted while Closed completes only after the breaker has
    /// opened and half-opened again. Its success must not count as a
    /// probe — the breaker stays half-open until *real* probes run.
    #[test]
    fn stale_pass_cannot_close_a_half_open_breaker() {
        let b = CircuitBreaker::new(fast(10));
        // A slow request is admitted while the breaker is Closed…
        let stale_a = b.try_pass().unwrap();
        let stale_b = b.try_pass().unwrap();
        // …then fast failures trip the breaker…
        for _ in 0..4 {
            report(&b, false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // …and the cool-down elapses, so it half-opens with zero probes.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // The stragglers finally complete — successfully. Pre-epoch
        // passes, so: no probe slots freed, no probe successes counted.
        b.on_result(stale_a, true);
        b.on_result(stale_b, true);
        assert_eq!(b.state(), BreakerState::HalfOpen, "stale successes must not close the breaker");
        // Probe capacity is still fully available (stale completions
        // did not underflow probes_in_flight into blocking territory),
        // and genuine probes close the breaker as usual.
        let p1 = b.try_pass().unwrap();
        let p2 = b.try_pass().unwrap();
        assert!(b.try_pass().is_none(), "stale passes must not widen the probe quota");
        b.on_result(p1, true);
        b.on_result(p2, true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    /// A stale release is equally inert: it must not free a probe slot
    /// it never held.
    #[test]
    fn stale_release_does_not_free_probe_slots() {
        let b = CircuitBreaker::new(fast(10));
        let stale = b.try_pass().unwrap();
        for _ in 0..4 {
            report(&b, false);
        }
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        let _p1 = b.try_pass().unwrap();
        let _p2 = b.try_pass().unwrap();
        b.release_pass(stale);
        assert!(b.try_pass().is_none(), "a stale release must not mint an extra probe");
    }
}
