/root/repo/target/debug/deps/proptests-afdb5f59d025fcd7.d: crates/soc-json/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-afdb5f59d025fcd7.rmeta: crates/soc-json/tests/proptests.rs Cargo.toml

crates/soc-json/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
