//! Elasticity chaos: campaigns that attack the store fleet's *control
//! plane* — lease-fenced elections and registry-driven rebalancing —
//! rather than its disks.
//!
//! Two campaign families, each reporting violations the same way the
//! kill campaigns do (an empty [`FencingReport::violations`] /
//! [`RebalanceChaosReport::violations`] is a pass):
//!
//! * **Fencing** ([`run_mem_fencing`]) — a fleet of lease-keeping store
//!   nodes behind a live registry. Mid-write-load the campaign
//!   partitions one primary from the registry (its keeper stops
//!   renewing). The invariants: the partitioned primary must refuse
//!   every write once its lease lapses (zero rogue acks), replicas must
//!   refuse shipments carrying its stale epoch, writes must keep
//!   flowing through the re-elected fleet, and healing the partition
//!   must converge the map back to full membership with no acked write
//!   lost.
//! * **Rebalance** ([`run_mem_rebalance`] / [`run_tcp_rebalance`]) — a
//!   node *joins* mid-write-load and is killed mid-hand-off (SIGKILL
//!   over TCP; unhost-and-drop in memory, with injected latency pinning
//!   the kill inside the transfer window). The invariants: the fleet
//!   must converge back to full membership once the joiner restarts,
//!   every pair of nodes must end fully replicated (anti-entropy runs
//!   until dry), and no acked write may be lost.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

use soc_http::{FaultConfig, HttpClient, HttpServer, MemNetwork, Transport};
use soc_json::{json, Value};
use soc_registry::directory::{DirectoryClient, DirectoryService};
use soc_registry::repository::Repository;
use soc_rest::{RestClient, RestError};
use soc_store::wal::Lsn;
use soc_store::{
    RebalanceConfig, Rebalancer, ShardMap, StoreClient, StoreError, StoreNode, StoreNodeConfig,
    TempDir,
};

use crate::process::Victim;

fn elastic_key(seed: u64, k: usize) -> String {
    format!("ek{seed:x}-{k}")
}

/// Poll `f` every 20 ms until it returns true or `budget` runs out.
fn wait_until(budget: Duration, mut f: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + budget;
    loop {
        if f() {
            return true;
        }
        if Instant::now() >= end {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn put_with_retry(client: &StoreClient, key: &str, value: &Value) -> io::Result<Lsn> {
    let mut last = String::new();
    for _ in 0..40 {
        match client.put(key, value) {
            Ok(v) => return Ok(v),
            Err(e) => {
                last = format!("{e:?}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    Err(io::Error::other(format!("write of {key} never succeeded: {last}")))
}

/// Read back every acked `(value, version)` pair through `client`,
/// appending violations to the three lists.
fn read_back(
    client: &StoreClient,
    expected: &HashMap<String, (Value, Lsn)>,
    lost: &mut Vec<String>,
    mismatched: &mut Vec<String>,
    stale: &mut Vec<String>,
) {
    for (key, (value, ver)) in expected {
        match client.get(key) {
            Ok(Some((got, gv))) => {
                if got != *value {
                    mismatched.push(key.clone());
                }
                if gv < *ver {
                    stale.push(key.clone());
                }
            }
            Ok(None) | Err(_) => lost.push(key.clone()),
        }
    }
}

// ---------------------------------------------------------------------------
// Fencing campaign
// ---------------------------------------------------------------------------

/// Knobs for the lease-fencing partition campaign.
#[derive(Debug, Clone)]
pub struct FencingConfig {
    /// Seeds key names and payloads.
    pub seed: u64,
    /// Store nodes in the fleet.
    pub nodes: usize,
    /// N-way replication factor.
    pub replication: usize,
    /// Distinct keys written each round.
    pub keys: usize,
    /// Lease TTL — the self-fencing deadline for a partitioned primary.
    pub lease_ttl: Duration,
    /// Keeper renewal cadence (must be well under the TTL).
    pub renew_interval: Duration,
}

impl Default for FencingConfig {
    fn default() -> FencingConfig {
        FencingConfig {
            seed: 0xFE11CE,
            nodes: 3,
            replication: 2,
            keys: 12,
            lease_ttl: Duration::from_millis(200),
            renew_interval: Duration::from_millis(40),
        }
    }
}

/// What the fencing campaign observed.
#[derive(Debug, Default)]
pub struct FencingReport {
    /// Writes the client saw acknowledged.
    pub acked: usize,
    /// Id of the partitioned primary.
    pub partitioned: String,
    /// Direct writes the partitioned primary refused under its lapsed
    /// lease.
    pub fenced_refusals: usize,
    /// Writes the partitioned primary wrongly acknowledged after its
    /// lease lapsed — any of these is split-brain.
    pub rogue_acks: usize,
    /// Crafted shipments at the partitioned primary's stale epoch that
    /// a survivor refused.
    pub stale_epoch_refusals: usize,
    /// Stale shipments a survivor *accepted* — each one is an old
    /// primary being obeyed past its fence.
    pub stale_epoch_accepted: usize,
    /// Fleet size after the partition healed.
    pub healed_nodes: usize,
    /// Fleet size the heal must converge to.
    pub expected_nodes: usize,
    /// Acked keys unreadable at the end.
    pub lost: Vec<String>,
    /// Acked keys that read back a different value.
    pub mismatched: Vec<String>,
    /// Acked keys that read back an older version than acknowledged.
    pub stale: Vec<String>,
}

impl FencingReport {
    /// Invariant violations; empty means the campaign passed.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.rogue_acks > 0 {
            v.push(format!(
                "partitioned primary acknowledged {} writes under a lapsed lease",
                self.rogue_acks
            ));
        }
        if self.fenced_refusals == 0 {
            v.push("partition window never exercised a fenced refusal".to_string());
        }
        if self.stale_epoch_accepted > 0 {
            v.push(format!(
                "replicas accepted {} shipments at a stale epoch",
                self.stale_epoch_accepted
            ));
        }
        if self.stale_epoch_refusals == 0 {
            v.push("stale-epoch shipment was never refused".to_string());
        }
        if self.healed_nodes != self.expected_nodes {
            v.push(format!(
                "heal converged to {} nodes, wanted {}",
                self.healed_nodes, self.expected_nodes
            ));
        }
        if !self.lost.is_empty() {
            v.push(format!("acked writes lost: {:?}", self.lost));
        }
        if !self.mismatched.is_empty() {
            v.push(format!("acked writes read back wrong values: {:?}", self.mismatched));
        }
        if !self.stale.is_empty() {
            v.push(format!("reads regressed below acked versions: {:?}", self.stale));
        }
        v
    }
}

/// The fencing campaign on the in-memory transport: partition one
/// primary from the registry mid-write-load, prove it self-fences and
/// cannot be obeyed, then heal and prove convergence.
pub fn run_mem_fencing(cfg: &FencingConfig) -> io::Result<FencingReport> {
    let net = Arc::new(MemNetwork::new());
    let (dir_svc, _dir_state) = DirectoryService::new(Repository::new(), vec![]);
    net.host("fence-dir", dir_svc);
    let directory = DirectoryClient::new(net.clone() as Arc<dyn Transport>, "mem://fence-dir");

    let ids: Vec<String> = (0..cfg.nodes).map(|i| format!("fstore-{i}")).collect();
    let dirs: Vec<TempDir> = (0..cfg.nodes).map(|i| TempDir::new(&format!("fence-{i}"))).collect();
    let mut nodes = Vec::new();
    let mut keepers = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        let node = StoreNode::open(
            StoreNodeConfig::new(id),
            dirs[i].path(),
            net.clone() as Arc<dyn Transport>,
        )
        .map_err(|e| io::Error::other(format!("open {id}: {e:?}")))?;
        net.host(id, node.router());
        keepers.push(Some(node.start_lease_keeper(
            directory.clone(),
            &format!("mem://{id}"),
            cfg.lease_ttl,
            cfg.renew_interval,
        )));
        nodes.push(node);
    }

    let reb = Rebalancer::new(
        directory.clone(),
        net.clone() as Arc<dyn Transport>,
        RebalanceConfig {
            replication: cfg.replication,
            lease_ttl: cfg.lease_ttl,
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(20),
            ..RebalanceConfig::default()
        },
    );
    if !wait_until(Duration::from_secs(5), || {
        let _ = reb.tick();
        reb.map().nodes().len() == cfg.nodes
    }) {
        return Err(io::Error::other("fleet never reached full membership"));
    }
    let client = StoreClient::new(net.clone() as Arc<dyn Transport>);
    client.set_map(reb.map());

    let mut report = FencingReport { expected_nodes: cfg.nodes, ..FencingReport::default() };
    let mut expected: HashMap<String, (Value, Lsn)> = HashMap::new();
    let write_round = |client: &StoreClient,
                       expected: &mut HashMap<String, (Value, Lsn)>,
                       round: i64|
     -> io::Result<usize> {
        let mut acked = 0;
        for k in 0..cfg.keys {
            let key = elastic_key(cfg.seed, k);
            let value = json!({ "seed": (cfg.seed as i64), "k": (k as i64), "round": round });
            let ver = put_with_retry(client, &key, &value)?;
            expected.insert(key, (value, ver));
            acked += 1;
        }
        Ok(acked)
    };

    report.acked += write_round(&client, &mut expected, 0)?;

    // Partition: the primary of key 0 stops renewing. Its fence lapses
    // within one TTL; the registry expires its lease; the next tick
    // re-elects around it.
    let victim_key = elastic_key(cfg.seed, 0);
    let victim_id = client.map().primary(&victim_key).expect("ring has nodes").id.clone();
    let vidx = ids.iter().position(|id| *id == victim_id).expect("known id");
    report.partitioned = victim_id.clone();
    let stale_epoch = nodes[vidx].fence().epoch();
    keepers[vidx].take();

    if !wait_until(cfg.lease_ttl * 20, || !nodes[vidx].fence().is_valid()) {
        return Err(io::Error::other("partitioned primary's fence never lapsed"));
    }
    // Zero writes under a lapsed lease: the old primary may still hold
    // a map naming it primary, but it must refuse.
    for _ in 0..3 {
        match nodes[vidx].put(&victim_key, &json!({ "rogue": true })) {
            Err(StoreError::Fenced { .. }) => report.fenced_refusals += 1,
            Ok(_) => report.rogue_acks += 1,
            Err(_) => {}
        }
    }

    // The fleet re-elects: the lease table expires the victim and the
    // rebalancer hands its shards to the survivors.
    if !wait_until(Duration::from_secs(5), || {
        let _ = reb.tick();
        reb.map().nodes().len() == cfg.nodes - 1
    }) {
        return Err(io::Error::other("fleet never re-elected around the partition"));
    }
    client.set_map(reb.map());

    // Even a fenceless rogue cannot be *obeyed*: a shipment carrying
    // the victim's pre-partition epoch bounces off every survivor.
    let rest = RestClient::new(net.clone() as Arc<dyn Transport>);
    let mut item = Value::object();
    item.set("lsn", 1_i64);
    item.set("command", "{\"op\":\"put\",\"key\":\"rogue\",\"value\":1}");
    let mut push = Value::object();
    push.set("source", victim_id.as_str());
    push.set("epoch", stale_epoch as i64);
    push.set("records", Value::Array(vec![item]));
    for survivor in reb.map().nodes() {
        match rest.post(&format!("{}/store/replicate", survivor.endpoint), &push) {
            Err(RestError::Status { .. }) => report.stale_epoch_refusals += 1,
            Ok(_) => report.stale_epoch_accepted += 1,
            Err(_) => {}
        }
    }

    // Writes keep flowing through the re-elected fleet.
    report.acked += write_round(&client, &mut expected, 1)?;

    // Heal: the victim's keeper comes back, its lease re-registers, and
    // the next rebalance folds it back in with its shards re-adopted.
    keepers[vidx] = Some(nodes[vidx].start_lease_keeper(
        directory.clone(),
        &format!("mem://{victim_id}"),
        cfg.lease_ttl,
        cfg.renew_interval,
    ));
    if !wait_until(Duration::from_secs(5), || {
        let _ = reb.tick();
        reb.map().nodes().len() == cfg.nodes
    }) {
        return Err(io::Error::other("healed fleet never reconverged"));
    }
    client.set_map(reb.map());
    report.healed_nodes = reb.map().nodes().len();

    report.acked += write_round(&client, &mut expected, 2)?;
    read_back(&client, &expected, &mut report.lost, &mut report.mismatched, &mut report.stale);
    Ok(report)
}

// ---------------------------------------------------------------------------
// Rebalance campaign (join + kill mid-hand-off)
// ---------------------------------------------------------------------------

/// Knobs for the join-plus-kill rebalance campaign.
#[derive(Debug, Clone)]
pub struct RebalanceChaosConfig {
    /// Seeds key names and payloads.
    pub seed: u64,
    /// Nodes alive before the join.
    pub initial_nodes: usize,
    /// N-way replication factor.
    pub replication: usize,
    /// Distinct keys written each round.
    pub keys: usize,
    /// Write rounds.
    pub rounds: usize,
    /// Round at whose start a fresh node joins (and, when
    /// `kill_mid_handoff`, is killed inside the transfer window).
    pub join_round: usize,
    /// Kill the joiner mid-hand-off and restart it.
    pub kill_mid_handoff: bool,
    /// Lease TTL for every node.
    pub lease_ttl: Duration,
    /// Keeper renewal cadence.
    pub renew_interval: Duration,
}

impl Default for RebalanceChaosConfig {
    fn default() -> RebalanceChaosConfig {
        RebalanceChaosConfig {
            seed: 0x12EBA1,
            initial_nodes: 2,
            replication: 2,
            keys: 12,
            rounds: 3,
            join_round: 1,
            kill_mid_handoff: true,
            lease_ttl: Duration::from_millis(250),
            renew_interval: Duration::from_millis(50),
        }
    }
}

/// What the rebalance campaign observed.
#[derive(Debug, Default)]
pub struct RebalanceChaosReport {
    /// Writes the client saw acknowledged.
    pub acked: usize,
    /// Id of the joining node.
    pub joiner: String,
    /// Whether the joiner ended up a full member.
    pub joined: bool,
    /// Kill/restart cycles executed on the joiner.
    pub restarts: usize,
    /// Fleet size at the end.
    pub final_nodes: usize,
    /// Fleet size the campaign must converge to.
    pub expected_nodes: usize,
    /// Whether every node's replica stream of every other node reached
    /// its applied LSN after anti-entropy ran dry.
    pub fully_replicated: bool,
    /// Acked keys unreadable at the end.
    pub lost: Vec<String>,
    /// Acked keys that read back a different value.
    pub mismatched: Vec<String>,
    /// Acked keys that read back an older version than acknowledged.
    pub stale: Vec<String>,
}

impl RebalanceChaosReport {
    /// Invariant violations; empty means the campaign passed.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if !self.joined {
            v.push("joiner never became a full member".to_string());
        }
        if self.final_nodes != self.expected_nodes {
            v.push(format!(
                "map converged to {} nodes, wanted {}",
                self.final_nodes, self.expected_nodes
            ));
        }
        if !self.fully_replicated {
            v.push("fleet never reached full pairwise replication".to_string());
        }
        if !self.lost.is_empty() {
            v.push(format!("acked writes lost: {:?}", self.lost));
        }
        if !self.mismatched.is_empty() {
            v.push(format!("acked writes read back wrong values: {:?}", self.mismatched));
        }
        if !self.stale.is_empty() {
            v.push(format!("reads regressed below acked versions: {:?}", self.stale));
        }
        v
    }
}

/// A store fleet the rebalance campaign can grow, kill, and restart.
/// Nodes keep their *own* registry leases (in-process keepers on the
/// mem transport, keepers inside the victim processes over TCP); the
/// campaign only watches the lease table through its rebalancer.
trait ElasticFleet {
    fn transport(&self) -> Arc<dyn Transport>;
    fn directory(&self) -> &DirectoryClient;
    /// Bring up one more node (with its lease keeper); returns its idx.
    fn spawn_node(&mut self) -> io::Result<usize>;
    fn id(&self, idx: usize) -> String;
    /// Make the node slow to answer, so a kill lands mid-hand-off.
    fn slow_down(&mut self, idx: usize);
    fn clear_faults(&mut self);
    fn kill(&mut self, idx: usize);
    fn restart(&mut self, idx: usize) -> io::Result<()>;
}

fn map_has(map: &ShardMap, id: &str) -> bool {
    map.nodes().iter().any(|n| n.id == id)
}

/// Every node's replica stream of every other node has reached that
/// node's applied LSN.
fn fully_replicated(rest: &RestClient, map: &ShardMap) -> bool {
    for source in map.nodes() {
        let Ok(status) = rest.get(&format!("{}/store/status", source.endpoint)) else {
            return false;
        };
        let applied = status.get("applied").and_then(Value::as_i64).unwrap_or(0);
        for dest in map.nodes() {
            if dest.id == source.id {
                continue;
            }
            let Ok(dstatus) = rest.get(&format!("{}/store/status", dest.endpoint)) else {
                return false;
            };
            let stream = dstatus
                .pointer(&format!("/replica_streams/{}", source.id))
                .and_then(Value::as_i64)
                .unwrap_or(0);
            if stream < applied {
                return false;
            }
        }
    }
    true
}

fn drive_rebalance(
    fleet: &mut dyn ElasticFleet,
    cfg: &RebalanceChaosConfig,
) -> io::Result<RebalanceChaosReport> {
    let reb = Rebalancer::new(
        fleet.directory().clone(),
        fleet.transport(),
        RebalanceConfig {
            replication: cfg.replication,
            lease_ttl: cfg.lease_ttl,
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(25),
            ..RebalanceConfig::default()
        },
    );
    if !wait_until(Duration::from_secs(10), || {
        let _ = reb.tick();
        reb.map().nodes().len() == cfg.initial_nodes
    }) {
        return Err(io::Error::other("initial fleet never reached full membership"));
    }
    let client = StoreClient::new(fleet.transport());
    client.set_map(reb.map());

    let mut report = RebalanceChaosReport {
        expected_nodes: cfg.initial_nodes + 1,
        ..RebalanceChaosReport::default()
    };
    let mut expected: HashMap<String, (Value, Lsn)> = HashMap::new();

    for round in 0..cfg.rounds {
        if round == cfg.join_round {
            let jidx = fleet.spawn_node()?;
            let joiner = fleet.id(jidx);
            report.joiner = joiner.clone();
            // The joiner's lease must be on the table before a hand-off
            // can start.
            let dir = fleet.directory().clone();
            if !wait_until(Duration::from_secs(10), || {
                dir.leases().map(|s| s.live.len() == cfg.initial_nodes + 1).unwrap_or(false)
            }) {
                return Err(io::Error::other("joiner's lease never registered"));
            }
            if cfg.kill_mid_handoff {
                // Pin the kill inside the transfer window: slow the
                // joiner down, start the hand-off on a side thread, and
                // kill while its transfers are in flight.
                fleet.slow_down(jidx);
                std::thread::scope(|s| {
                    let handoff = s.spawn(|| {
                        let _ = reb.tick();
                    });
                    std::thread::sleep(Duration::from_millis(60));
                    fleet.kill(jidx);
                    let _ = handoff.join();
                });
                fleet.clear_faults();
                // The dead joiner's lease expires; the fleet settles
                // back to the survivors before writes resume.
                if !wait_until(Duration::from_secs(10), || {
                    let _ = reb.tick();
                    !map_has(&reb.map(), &joiner)
                }) {
                    return Err(io::Error::other("dead joiner never left the map"));
                }
                client.set_map(reb.map());
                fleet.restart(jidx)?;
                report.restarts += 1;
            }
            // Converge to full membership (first time for a clean join,
            // second time after the kill+restart).
            if !wait_until(Duration::from_secs(10), || {
                let _ = reb.tick();
                reb.map().nodes().len() == cfg.initial_nodes + 1 && map_has(&reb.map(), &joiner)
            }) {
                return Err(io::Error::other("joiner never became a member"));
            }
            client.set_map(reb.map());
            report.joined = true;
        }
        for k in 0..cfg.keys {
            let key = elastic_key(cfg.seed, k);
            let value =
                json!({ "seed": (cfg.seed as i64), "k": (k as i64), "round": (round as i64) });
            let ver = put_with_retry(&client, &key, &value)?;
            expected.insert(key, (value, ver));
            report.acked += 1;
        }
    }

    // Settle: anti-entropy sweeps until a full pass repairs nothing.
    for _ in 0..20 {
        if reb.anti_entropy().map_err(|e| io::Error::other(format!("{e:?}")))? == 0 {
            break;
        }
    }
    let rest = RestClient::new(fleet.transport());
    report.fully_replicated = fully_replicated(&rest, &reb.map());
    report.final_nodes = reb.map().nodes().len();
    read_back(&client, &expected, &mut report.lost, &mut report.mismatched, &mut report.stale);
    Ok(report)
}

struct MemElasticFleet {
    net: Arc<MemNetwork>,
    directory: DirectoryClient,
    ids: Vec<String>,
    dirs: Vec<TempDir>,
    nodes: Vec<Option<StoreNode>>,
    keepers: Vec<Option<soc_store::node::LeaseKeeper>>,
    lease_ttl: Duration,
    renew_interval: Duration,
}

impl MemElasticFleet {
    fn bring_up(&mut self, idx: usize) -> io::Result<()> {
        let id = self.ids[idx].clone();
        let node = StoreNode::open(
            StoreNodeConfig::new(&id),
            self.dirs[idx].path(),
            self.net.clone() as Arc<dyn Transport>,
        )
        .map_err(|e| io::Error::other(format!("open {id}: {e:?}")))?;
        self.net.host(&id, node.router());
        self.keepers[idx] = Some(node.start_lease_keeper(
            self.directory.clone(),
            &format!("mem://{id}"),
            self.lease_ttl,
            self.renew_interval,
        ));
        self.nodes[idx] = Some(node);
        Ok(())
    }
}

impl ElasticFleet for MemElasticFleet {
    fn transport(&self) -> Arc<dyn Transport> {
        self.net.clone()
    }

    fn directory(&self) -> &DirectoryClient {
        &self.directory
    }

    fn spawn_node(&mut self) -> io::Result<usize> {
        let idx = self.ids.len();
        self.ids.push(format!("rstore-{idx}"));
        self.dirs.push(TempDir::new(&format!("reb-chaos-{idx}")));
        self.nodes.push(None);
        self.keepers.push(None);
        self.bring_up(idx)?;
        Ok(idx)
    }

    fn id(&self, idx: usize) -> String {
        self.ids[idx].clone()
    }

    fn slow_down(&mut self, idx: usize) {
        self.net.set_fault(
            &self.ids[idx],
            FaultConfig { latency: Duration::from_millis(120), ..FaultConfig::default() },
        );
    }

    fn clear_faults(&mut self) {
        for id in &self.ids {
            self.net.set_fault(id, FaultConfig::default());
        }
    }

    fn kill(&mut self, idx: usize) {
        // Keeper first (the lease must be allowed to lapse), then the
        // host entry, then the node handle — no shutdown, no compaction.
        self.keepers[idx] = None;
        self.net.unhost(&self.ids[idx]);
        self.nodes[idx] = None;
    }

    fn restart(&mut self, idx: usize) -> io::Result<()> {
        self.bring_up(idx)
    }
}

/// The join-plus-kill rebalance campaign on the in-memory transport.
pub fn run_mem_rebalance(cfg: &RebalanceChaosConfig) -> io::Result<RebalanceChaosReport> {
    let net = Arc::new(MemNetwork::new());
    let (dir_svc, _dir_state) = DirectoryService::new(Repository::new(), vec![]);
    net.host("reb-dir", dir_svc);
    let directory = DirectoryClient::new(net.clone() as Arc<dyn Transport>, "mem://reb-dir");
    let mut fleet = MemElasticFleet {
        net,
        directory,
        ids: Vec::new(),
        dirs: Vec::new(),
        nodes: Vec::new(),
        keepers: Vec::new(),
        lease_ttl: cfg.lease_ttl,
        renew_interval: cfg.renew_interval,
    };
    for _ in 0..cfg.initial_nodes {
        fleet.spawn_node()?;
    }
    drive_rebalance(&mut fleet, cfg)
}

struct TcpElasticFleet {
    http: Arc<HttpClient>,
    directory: DirectoryClient,
    directory_url: String,
    victim_exe: String,
    ids: Vec<String>,
    dirs: Vec<TempDir>,
    victims: Vec<Victim>,
    lease_ttl: Duration,
    renew_interval: Duration,
    // The registry must outlive the fleet.
    _dir_server: HttpServer,
}

impl ElasticFleet for TcpElasticFleet {
    fn transport(&self) -> Arc<dyn Transport> {
        self.http.clone()
    }

    fn directory(&self) -> &DirectoryClient {
        &self.directory
    }

    fn spawn_node(&mut self) -> io::Result<usize> {
        let idx = self.ids.len();
        let id = format!("tstore-{idx}");
        let dir = TempDir::new(&format!("tcp-reb-{idx}"));
        let args = vec![
            "store".to_string(),
            dir.path().display().to_string(),
            id.clone(),
            self.directory_url.clone(),
            self.lease_ttl.as_millis().to_string(),
            self.renew_interval.as_millis().to_string(),
        ];
        let mut v = Victim::spawn(&self.victim_exe, &args)?;
        v.expect_line("READY")?;
        self.ids.push(id);
        self.dirs.push(dir);
        self.victims.push(v);
        Ok(idx)
    }

    fn id(&self, idx: usize) -> String {
        self.ids[idx].clone()
    }

    fn slow_down(&mut self, _idx: usize) {
        // SIGKILL timing does the pinning over TCP; real sockets are
        // slow enough that the hand-off window is wide.
    }

    fn clear_faults(&mut self) {}

    fn kill(&mut self, idx: usize) {
        self.victims[idx].kill9();
    }

    fn restart(&mut self, idx: usize) -> io::Result<()> {
        // The restarted victim binds a fresh port; its keeper re-renews
        // with the new endpoint, which bumps the lease table.
        self.victims[idx].restart()?;
        self.victims[idx].expect_line("READY")?;
        Ok(())
    }
}

/// The join-plus-kill rebalance campaign over real sockets: store nodes
/// run as child processes keeping their own leases against a registry
/// in the campaign process, and the joiner takes a real SIGKILL inside
/// the hand-off window.
pub fn run_tcp_rebalance(
    victim_exe: &str,
    cfg: &RebalanceChaosConfig,
) -> io::Result<RebalanceChaosReport> {
    let (dir_svc, _dir_state) = DirectoryService::new(Repository::new(), vec![]);
    let dir_server = HttpServer::bind("127.0.0.1:0", 2, dir_svc)
        .map_err(|e| io::Error::other(format!("bind registry: {e:?}")))?;
    let directory_url = dir_server.url();
    let http = Arc::new(HttpClient::new());
    let directory = DirectoryClient::new(http.clone() as Arc<dyn Transport>, &directory_url);
    let mut fleet = TcpElasticFleet {
        http,
        directory,
        directory_url,
        victim_exe: victim_exe.to_string(),
        ids: Vec::new(),
        dirs: Vec::new(),
        victims: Vec::new(),
        lease_ttl: cfg.lease_ttl,
        renew_interval: cfg.renew_interval,
        _dir_server: dir_server,
    };
    for _ in 0..cfg.initial_nodes {
        fleet.spawn_node()?;
    }
    drive_rebalance(&mut fleet, cfg)
}
