/root/repo/target/debug/deps/soc_soap-ba44e701a9e620fc.d: crates/soc-soap/src/lib.rs crates/soc-soap/src/client.rs crates/soc-soap/src/contract.rs crates/soc-soap/src/envelope.rs crates/soc-soap/src/service.rs crates/soc-soap/src/wsdl.rs

/root/repo/target/debug/deps/libsoc_soap-ba44e701a9e620fc.rlib: crates/soc-soap/src/lib.rs crates/soc-soap/src/client.rs crates/soc-soap/src/contract.rs crates/soc-soap/src/envelope.rs crates/soc-soap/src/service.rs crates/soc-soap/src/wsdl.rs

/root/repo/target/debug/deps/libsoc_soap-ba44e701a9e620fc.rmeta: crates/soc-soap/src/lib.rs crates/soc-soap/src/client.rs crates/soc-soap/src/contract.rs crates/soc-soap/src/envelope.rs crates/soc-soap/src/service.rs crates/soc-soap/src/wsdl.rs

crates/soc-soap/src/lib.rs:
crates/soc-soap/src/client.rs:
crates/soc-soap/src/contract.rs:
crates/soc-soap/src/envelope.rs:
crates/soc-soap/src/service.rs:
crates/soc-soap/src/wsdl.rs:
