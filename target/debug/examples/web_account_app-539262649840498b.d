/root/repo/target/debug/examples/web_account_app-539262649840498b.d: examples/web_account_app.rs Cargo.toml

/root/repo/target/debug/examples/libweb_account_app-539262649840498b.rmeta: examples/web_account_app.rs Cargo.toml

examples/web_account_app.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
