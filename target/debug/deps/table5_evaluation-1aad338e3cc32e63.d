/root/repo/target/debug/deps/table5_evaluation-1aad338e3cc32e63.d: crates/soc-bench/src/bin/table5_evaluation.rs

/root/repo/target/debug/deps/table5_evaluation-1aad338e3cc32e63: crates/soc-bench/src/bin/table5_evaluation.rs

crates/soc-bench/src/bin/table5_evaluation.rs:
