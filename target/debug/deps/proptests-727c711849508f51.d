/root/repo/target/debug/deps/proptests-727c711849508f51.d: crates/soc-json/tests/proptests.rs

/root/repo/target/debug/deps/proptests-727c711849508f51: crates/soc-json/tests/proptests.rs

crates/soc-json/tests/proptests.rs:
