/root/repo/target/debug/examples/gateway_marketplace-86170eb9a9d7c26c.d: examples/gateway_marketplace.rs

/root/repo/target/debug/examples/gateway_marketplace-86170eb9a9d7c26c: examples/gateway_marketplace.rs

examples/gateway_marketplace.rs:
