//! Property tests for the workflow engines: random DAG execution
//! equivalence (sequential vs parallel), FSM determinism, and BPEL
//! arithmetic against a direct interpreter.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use soc_json::Value;
use soc_parallel::ThreadPool;
use soc_workflow::activity::{Compute, Const};
use soc_workflow::bpel::{Process, Scope, Step};
use soc_workflow::fsm::FsmBuilder;
use soc_workflow::graph::WorkflowGraph;

/// A random layered DAG of adders: layer 0 holds constants, each later
/// node adds two upstream values. Returns the graph and the expected
/// value of every sink, computed directly.
fn layered_graph(consts: Vec<i64>, links: Vec<(usize, usize)>) -> (WorkflowGraph, i64) {
    let mut g = WorkflowGraph::new();
    let mut ids = Vec::new();
    let mut values = Vec::new();
    for (i, c) in consts.iter().enumerate() {
        ids.push(g.add(&format!("c{i}"), Const::new(*c)));
        values.push(*c);
    }
    for (k, (a, b)) in links.iter().enumerate() {
        let ai = a % ids.len();
        let bi = b % ids.len();
        let node = g.add(
            &format!("n{k}"),
            Compute::new(&["a", "b"], |p| {
                Ok(Value::from(
                    p["a"].as_i64().unwrap_or(0).wrapping_add(p["b"].as_i64().unwrap_or(0)),
                ))
            }),
        );
        g.connect(ids[ai], "out", node, "a").unwrap();
        g.connect(ids[bi], "out", node, "b").unwrap();
        ids.push(node);
        values.push(values[ai].wrapping_add(values[bi]));
    }
    // Expected checksum over every node value (all unconnected outputs
    // become results; some earlier nodes may feed later ones and thus
    // not appear — sum only sinks below).
    (g, *values.last().unwrap_or(&0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dataflow_sequential_equals_parallel(
        consts in proptest::collection::vec(-1000i64..1000, 1..6),
        links in proptest::collection::vec((any::<usize>(), any::<usize>()), 1..12),
    ) {
        let (g, _) = layered_graph(consts.clone(), links.clone());
        let seq = g.run(&HashMap::new()).unwrap();
        let pool = ThreadPool::new(3);
        let par = g.run_parallel(&pool, &HashMap::new()).unwrap();
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn dataflow_last_node_value_is_correct(
        consts in proptest::collection::vec(-1000i64..1000, 1..6),
        links in proptest::collection::vec((any::<usize>(), any::<usize>()), 1..12),
    ) {
        let (g, expect_last) = layered_graph(consts, links.clone());
        let out = g.run(&HashMap::new()).unwrap();
        let last_key = format!("n{}.out", links.len() - 1);
        // The last node is never an input to anything: always a sink.
        prop_assert_eq!(out[&last_key].as_i64(), Some(expect_last));
    }

    #[test]
    fn fsm_dispatch_is_deterministic(events in proptest::collection::vec(0u8..3, 0..64)) {
        let build = || {
            FsmBuilder::<u32>::new("a")
                .on_do("a", "x", "b", |c| *c = c.wrapping_add(1))
                .on_do("b", "y", "c", |c| *c = c.wrapping_mul(3))
                .on("c", "z", "a")
                .on("b", "x", "b")
                .build()
        };
        let run = || {
            let mut fsm = build();
            let mut ctx = 0u32;
            for e in &events {
                let name = match e {
                    0 => "x",
                    1 => "y",
                    _ => "z",
                };
                fsm.dispatch(name, &mut ctx);
            }
            (fsm.state().to_string(), ctx, fsm.trace().len())
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn fsm_trace_is_consistent_with_state(events in proptest::collection::vec(0u8..3, 0..64)) {
        let mut fsm = FsmBuilder::<()>::new("s0")
            .on("s0", "a", "s1")
            .on("s1", "b", "s0")
            .on("s1", "a", "s1")
            .build();
        let mut ctx = ();
        for e in &events {
            fsm.dispatch(if *e == 0 { "a" } else { "b" }, &mut ctx);
        }
        // Replaying the trace from the initial state lands on the same
        // final state.
        let mut cur = "s0".to_string();
        for (from, _ev, to) in fsm.trace() {
            prop_assert_eq!(from, &cur);
            cur = to.clone();
        }
        prop_assert_eq!(cur.as_str(), fsm.state());
    }

    #[test]
    fn bpel_while_computes_the_same_as_rust(
        start in 0i64..50,
        bound in 0i64..60,
        step in 1i64..5,
    ) {
        let net = soc_http::MemNetwork::new();
        let process = Process::new(
            Step::Sequence(vec![
                Step::set("i", start),
                Step::set("acc", 0),
                Step::While {
                    cond: Arc::new(move |s: &Scope| s["i"].as_i64().unwrap() < bound),
                    body: Box::new(Step::Sequence(vec![
                        Step::assign("acc", |s| {
                            Ok(Value::from(s["acc"].as_i64().unwrap() + s["i"].as_i64().unwrap()))
                        }),
                        Step::assign("i", move |s| {
                            Ok(Value::from(s["i"].as_i64().unwrap() + step))
                        }),
                    ])),
                },
            ]),
            Arc::new(net),
        );
        let out = process.run(Scope::new()).unwrap();
        // Direct interpretation.
        let (mut i, mut acc) = (start, 0i64);
        while i < bound {
            acc += i;
            i += step;
        }
        prop_assert_eq!(out["acc"].as_i64(), Some(acc));
        prop_assert_eq!(out["i"].as_i64(), Some(i));
    }
}
