//! Property tests for the repository services: crypto round-trips over
//! arbitrary data/keys, cart arithmetic laws, cache behavioral model,
//! and mortgage decision invariants.

use proptest::prelude::*;
use soc_services::cache::CacheService;
use soc_services::cart::{CartService, LineItem, Promotion};
use soc_services::crypto::{
    base64_decode, base64_encode, hex_decode, hex_encode, vigenere_decrypt, vigenere_encrypt,
    EncryptionService, Xtea,
};
use soc_services::mortgage::{Application, CreditScoreService, Decision, MortgageService};
use soc_services::password::PasswordService;

proptest! {
    #[test]
    fn hex_round_trip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
    }

    #[test]
    fn base64_round_trip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data);
    }

    #[test]
    fn xtea_round_trip(
        key in proptest::collection::vec(any::<u8>(), 16..17),
        data in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let key: [u8; 16] = key.try_into().unwrap();
        let cipher = Xtea::new(&key);
        let enc = cipher.encrypt(&data);
        prop_assert_eq!(enc.len() % 8, 0);
        prop_assert!(enc.len() >= data.len());
        prop_assert_eq!(cipher.decrypt(&enc).unwrap(), data);
    }

    #[test]
    fn xtea_ciphertext_differs_from_plaintext(
        data in proptest::collection::vec(any::<u8>(), 8..128),
    ) {
        let cipher = Xtea::from_passphrase("k");
        let enc = cipher.encrypt(&data);
        prop_assert_ne!(&enc[..data.len().min(enc.len())], &data[..]);
    }

    #[test]
    fn text_encryption_round_trip(pass in "[ -~]{1,24}", text in "[ -~é中]{0,128}") {
        let c = EncryptionService::encrypt_text(&pass, &text);
        prop_assert_eq!(EncryptionService::decrypt_text(&pass, &c).unwrap(), text);
    }

    #[test]
    fn vigenere_round_trip(key in "[a-zA-Z]{1,12}", text in "[ -~]{0,96}") {
        let c = vigenere_encrypt(&text, &key).unwrap();
        prop_assert_eq!(vigenere_decrypt(&c, &key).unwrap(), text.clone());
        // Non-letters are untouched.
        for (a, b) in text.chars().zip(c.chars()) {
            if !a.is_ascii_alphabetic() {
                prop_assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn cart_totals_are_linear(
        items in proptest::collection::vec(("[a-z]{1,6}", 0i64..10_000, 1u32..20), 1..8),
    ) {
        let svc = CartService::new();
        let id = svc.create();
        let mut expected = 0i64;
        for (i, (sku, price, qty)) in items.iter().enumerate() {
            // Unique SKUs so merging doesn't complicate the oracle.
            let sku = format!("{sku}-{i}");
            svc.add(id, LineItem {
                sku,
                name: "x".into(),
                unit_price: *price,
                quantity: *qty,
            }).unwrap();
            expected += *price * *qty as i64;
        }
        let r = svc.checkout(id, &[]).unwrap();
        prop_assert_eq!(r.subtotal, expected);
        prop_assert_eq!(r.total, expected);
    }

    #[test]
    fn percent_discount_bounds(
        price in 1i64..100_000,
        qty in 1u32..10,
        pct in 1u32..100,
    ) {
        let svc = CartService::new();
        let id = svc.create();
        svc.add(id, LineItem { sku: "a".into(), name: "x".into(), unit_price: price, quantity: qty })
            .unwrap();
        let r = svc.checkout(id, &[Promotion::PercentOff(pct)]).unwrap();
        prop_assert!(r.total >= 0);
        prop_assert!(r.total <= r.subtotal);
        prop_assert_eq!(r.total + r.discount, r.subtotal);
    }

    #[test]
    fn cache_model(ops in proptest::collection::vec((0u8..2, 0u8..4, "[a-z]{1,2}"), 0..64)) {
        // Model: unbounded map with TTL ignored (ttl here is huge) —
        // with capacity ≥ distinct keys the cache must agree exactly.
        let cache = CacheService::new(64, 1_000_000);
        let mut model: std::collections::HashMap<String, String> = Default::default();
        for (t, (op, val, key)) in ops.into_iter().enumerate() {
            let now = t as u64;
            match op {
                0 => {
                    let v = format!("v{val}");
                    cache.put(&key, &v, now);
                    model.insert(key, v);
                }
                _ => {
                    prop_assert_eq!(cache.get(&key, now), model.get(&key).cloned());
                }
            }
        }
    }

    #[test]
    fn credit_scores_stable_and_bounded(ssn in "[0-9]{9}") {
        let a = CreditScoreService::score(&ssn);
        prop_assert_eq!(a, CreditScoreService::score(&ssn));
        prop_assert!((300..=850).contains(&a));
        // Formatting with dashes never changes the score.
        let dashed = format!("{}-{}-{}", &ssn[0..3], &ssn[3..5], &ssn[5..9]);
        prop_assert_eq!(CreditScoreService::score(&dashed), a);
    }

    #[test]
    fn mortgage_decisions_are_rule_consistent(
        ssn in "[0-9]{9}",
        income in 1u64..500_000,
        loan in 1u64..2_000_000,
    ) {
        let svc = MortgageService::default();
        let app = Application {
            name: "P".into(),
            ssn: ssn.clone(),
            annual_income: income,
            loan_amount: loan,
            term_years: 30,
        };
        let score = CreditScoreService::score(&ssn);
        let dti_ok = loan * 100 <= income * svc.max_loan_to_income_pct;
        match svc.decide(&app) {
            Decision::Approved { score: s, rate_bps, monthly_payment } => {
                prop_assert_eq!(s, score);
                prop_assert!(score >= svc.min_score);
                prop_assert!(dti_ok);
                prop_assert!((300..=700).contains(&rate_bps));
                prop_assert!(monthly_payment > 0);
            }
            Decision::Rejected { reasons, .. } => {
                prop_assert!(score < svc.min_score || !dti_ok);
                prop_assert!(!reasons.is_empty());
            }
        }
    }

    #[test]
    fn generated_passwords_meet_policy(seed in any::<u64>(), len in 4usize..64) {
        let svc = PasswordService::new(seed);
        let p = svc.generate(len, soc_services::password::Charset::full()).unwrap();
        prop_assert_eq!(p.chars().count(), len);
        prop_assert!(PasswordService::entropy_bits(&p) > 0.0);
    }
}
