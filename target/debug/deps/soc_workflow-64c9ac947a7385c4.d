/root/repo/target/debug/deps/soc_workflow-64c9ac947a7385c4.d: crates/soc-workflow/src/lib.rs crates/soc-workflow/src/activity.rs crates/soc-workflow/src/bpel.rs crates/soc-workflow/src/fsm.rs crates/soc-workflow/src/graph.rs

/root/repo/target/debug/deps/soc_workflow-64c9ac947a7385c4: crates/soc-workflow/src/lib.rs crates/soc-workflow/src/activity.rs crates/soc-workflow/src/bpel.rs crates/soc-workflow/src/fsm.rs crates/soc-workflow/src/graph.rs

crates/soc-workflow/src/lib.rs:
crates/soc-workflow/src/activity.rs:
crates/soc-workflow/src/bpel.rs:
crates/soc-workflow/src/fsm.rs:
crates/soc-workflow/src/graph.rs:
