//! Trace identity and propagation: trace/span ids, the W3C
//! `traceparent` wire format, and the thread-local active context that
//! transports read when injecting outbound headers.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The header name carrying trace context across process (and thread)
/// boundaries, per the W3C Trace Context spec.
pub const TRACEPARENT: &str = "traceparent";

/// A 128-bit trace identifier shared by every span in one trace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TraceId(pub u128);

impl TraceId {
    /// A fresh random (non-zero) trace id.
    pub fn generate() -> TraceId {
        let hi = next_u64() as u128;
        let lo = next_u64() as u128;
        TraceId(((hi << 64) | lo).max(1))
    }

    /// Lowercase 32-hex-digit form.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse a 32-hex-digit (lowercase) id; zero is invalid.
    pub fn from_hex(s: &str) -> Option<TraceId> {
        if s.len() != 32 || !is_lower_hex(s) {
            return None;
        }
        let v = u128::from_str_radix(s, 16).ok()?;
        if v == 0 {
            None
        } else {
            Some(TraceId(v))
        }
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A 64-bit span identifier, unique within its trace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SpanId(pub u64);

impl SpanId {
    /// A fresh random (non-zero) span id.
    pub fn generate() -> SpanId {
        SpanId(next_u64().max(1))
    }

    /// Lowercase 16-hex-digit form.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse a 16-hex-digit (lowercase) id; zero is invalid.
    pub fn from_hex(s: &str) -> Option<SpanId> {
        if s.len() != 16 || !is_lower_hex(s) {
            return None;
        }
        let v = u64::from_str_radix(s, 16).ok()?;
        if v == 0 {
            None
        } else {
            Some(SpanId(v))
        }
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The propagated portion of a span: enough to parent a remote child
/// and carry the head-based sampling decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceContext {
    /// Trace this context belongs to.
    pub trace_id: TraceId,
    /// The span acting as parent on the other side of the hop.
    pub span_id: SpanId,
    /// Head-based sampling decision, made once at the trace root.
    pub sampled: bool,
}

impl TraceContext {
    /// Encode as a `traceparent` value:
    /// `00-{trace_id:032x}-{span_id:016x}-{flags:02x}`.
    pub fn to_traceparent(&self) -> String {
        format!("00-{:032x}-{:016x}-{:02x}", self.trace_id.0, self.span_id.0, self.sampled as u8)
    }

    /// Decode a `traceparent` value. Strict on shape (version `00`,
    /// lowercase hex, non-zero ids); unknown flag bits are ignored
    /// except the low `sampled` bit.
    pub fn parse_traceparent(s: &str) -> Option<TraceContext> {
        let mut parts = s.split('-');
        let version = parts.next()?;
        if version != "00" {
            return None;
        }
        let trace_id = TraceId::from_hex(parts.next()?)?;
        let span_id = SpanId::from_hex(parts.next()?)?;
        let flags = parts.next()?;
        if flags.len() != 2 || !is_lower_hex(flags) || parts.next().is_some() {
            return None;
        }
        let flags = u8::from_str_radix(flags, 16).ok()?;
        Some(TraceContext { trace_id, span_id, sampled: flags & 1 == 1 })
    }
}

fn is_lower_hex(s: &str) -> bool {
    s.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The context active on this thread, if any. Transports call this to
/// inject outbound `traceparent` headers; [`crate::span`] calls it to
/// parent new spans.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|c| c.get())
}

/// Make `ctx` the active context on this thread until the returned
/// guard drops (the previous context is then restored). Used by span
/// activation and by pool workers adopting a caller's context.
pub fn set_current(ctx: TraceContext) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace(Some(ctx)));
    ContextGuard { prev }
}

/// Restores the previously active context when dropped.
#[must_use = "dropping the guard immediately deactivates the context"]
pub struct ContextGuard {
    prev: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

thread_local! {
    static RNG: Cell<u64> = Cell::new(rng_seed());
}

fn rng_seed() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    t ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// SplitMix64 step over a thread-local state: fast, allocation-free id
/// generation with no cross-thread contention.
pub(crate) fn next_u64() -> u64 {
    RNG.with(|s| {
        let mut z = s.get().wrapping_add(0x9E37_79B9_7F4A_7C15);
        s.set(z);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traceparent_round_trip() {
        let ctx = TraceContext {
            trace_id: TraceId(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef),
            span_id: SpanId(0xfeed_face_cafe_beef),
            sampled: true,
        };
        let wire = ctx.to_traceparent();
        assert_eq!(wire, "00-0123456789abcdef0123456789abcdef-feedfacecafebeef-01");
        assert_eq!(TraceContext::parse_traceparent(&wire), Some(ctx));
    }

    #[test]
    fn traceparent_unsampled_flag() {
        let ctx = TraceContext {
            trace_id: TraceId::generate(),
            span_id: SpanId::generate(),
            sampled: false,
        };
        let parsed = TraceContext::parse_traceparent(&ctx.to_traceparent()).unwrap();
        assert!(!parsed.sampled);
        assert_eq!(parsed.trace_id, ctx.trace_id);
    }

    #[test]
    fn traceparent_rejects_malformed() {
        for bad in [
            "",
            "00",
            "01-0123456789abcdef0123456789abcdef-feedfacecafebeef-01",
            "00-0123456789ABCDEF0123456789ABCDEF-feedfacecafebeef-01",
            "00-00000000000000000000000000000000-feedfacecafebeef-01",
            "00-0123456789abcdef0123456789abcdef-0000000000000000-01",
            "00-0123456789abcdef0123456789abcdef-feedfacecafebeef-1",
            "00-0123456789abcdef0123456789abcdef-feedfacecafebeef-01-extra",
            "00-0123456789abcdef-feedfacecafebeef-01",
        ] {
            assert_eq!(TraceContext::parse_traceparent(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn generated_ids_are_nonzero_and_distinct() {
        let a = TraceId::generate();
        let b = TraceId::generate();
        assert_ne!(a.0, 0);
        assert_ne!(a, b);
        assert_ne!(SpanId::generate(), SpanId::generate());
    }

    #[test]
    fn context_guard_restores_previous() {
        assert_eq!(current(), None);
        let outer = TraceContext {
            trace_id: TraceId::generate(),
            span_id: SpanId::generate(),
            sampled: true,
        };
        let inner = TraceContext { span_id: SpanId::generate(), ..outer };
        let g1 = set_current(outer);
        assert_eq!(current(), Some(outer));
        {
            let _g2 = set_current(inner);
            assert_eq!(current(), Some(inner));
        }
        assert_eq!(current(), Some(outer));
        drop(g1);
        assert_eq!(current(), None);
    }

    #[test]
    fn id_hex_round_trip() {
        let t = TraceId::generate();
        assert_eq!(TraceId::from_hex(&t.to_hex()), Some(t));
        let s = SpanId::generate();
        assert_eq!(SpanId::from_hex(&s.to_hex()), Some(s));
        assert_eq!(TraceId::from_hex("zz"), None);
        assert_eq!(SpanId::from_hex(&"0".repeat(16)), None);
    }
}
