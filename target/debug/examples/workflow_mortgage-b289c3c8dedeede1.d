/root/repo/target/debug/examples/workflow_mortgage-b289c3c8dedeede1.d: examples/workflow_mortgage.rs Cargo.toml

/root/repo/target/debug/examples/libworkflow_mortgage-b289c3c8dedeede1.rmeta: examples/workflow_mortgage.rs Cargo.toml

examples/workflow_mortgage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
