//! # soc — Service-Oriented Computing in Rust
//!
//! Umbrella crate re-exporting the whole workspace under one namespace.
//! See the individual crates for full documentation, and `DESIGN.md` for
//! the system inventory.
pub use soc_chaos as chaos;
pub use soc_curriculum as curriculum;
pub use soc_discover as discover;
pub use soc_gateway as gateway;
pub use soc_http as http;
pub use soc_json as json;
pub use soc_observe as observe;
pub use soc_parallel as parallel;
pub use soc_registry as registry;
pub use soc_rest as rest;
pub use soc_robotics as robotics;
pub use soc_services as services;
pub use soc_soap as soap;
pub use soc_store as store;
pub use soc_webapp as webapp;
pub use soc_workflow as workflow;
pub use soc_xml as xml;

/// Commonly used items in one import: `use soc::prelude::*;`.
pub mod prelude {
    pub use soc_discover::{Catalog, CrawlConfig, Discovery, Goal, Planner, SearchIndex};
    pub use soc_gateway::{Gateway, GatewayConfig, Policy};
    pub use soc_http::mem::{FaultConfig, MemNetwork, Transport, UniClient};
    pub use soc_http::{Handler, HttpClient, HttpServer, Method, Request, Response, Status};
    pub use soc_json::{json, Value};
    pub use soc_observe::{MetricsRegistry, Span, SpanKind, SpanStore, TraceContext, TraceId};
    pub use soc_parallel::{parallel_for, parallel_map, parallel_reduce, Schedule, ThreadPool};
    pub use soc_registry::directory::{DirectoryClient, DirectoryError, DirectoryService};
    pub use soc_registry::{Binding, Repository, ServiceDescriptor};
    pub use soc_rest::{PathParams, RestClient, Router};
    pub use soc_soap::{Contract, Operation, SoapClient, SoapService, XsdType};
    pub use soc_xml::{Document, XmlReader, XmlWriter};
}
