//! Maze algorithm comparison across maze sizes: steps/ticks to exit for
//! greedy vs wall-following vs random walk vs the BFS oracle (the
//! Figure 1/2 lab, as a bench).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soc_robotics::algorithms::{self, Hand, RandomWalk, TwoDistanceGreedy, WallFollower};
use soc_robotics::maze::Maze;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(150))
}

fn bench_maze(c: &mut Criterion) {
    let mut group = c.benchmark_group("maze");

    for size in [9usize, 15, 25] {
        let maze = Maze::generate(size, size, 42);
        let budget = size * size * 20;
        group.bench_with_input(BenchmarkId::new("generate", size), &size, |b, &s| {
            b.iter(|| Maze::generate(s, s, std::hint::black_box(42)))
        });
        group.bench_with_input(BenchmarkId::new("generate_prim", size), &size, |b, &s| {
            b.iter(|| Maze::generate_prim(s, s, std::hint::black_box(42)))
        });
        group.bench_with_input(BenchmarkId::new("bfs_oracle", size), &maze, |b, m| {
            b.iter(|| algorithms::oracle_steps(std::hint::black_box(m)))
        });
        group.bench_with_input(BenchmarkId::new("greedy", size), &maze, |b, m| {
            b.iter(|| algorithms::run(m, &mut TwoDistanceGreedy::new(), budget))
        });
        group.bench_with_input(BenchmarkId::new("wall_follow", size), &maze, |b, m| {
            b.iter(|| algorithms::run(m, &mut WallFollower::new(Hand::Right), budget))
        });
        group.bench_with_input(BenchmarkId::new("random_walk", size), &maze, |b, m| {
            b.iter(|| algorithms::run(m, &mut RandomWalk::new(1), budget))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_maze
}
criterion_main!(benches);
