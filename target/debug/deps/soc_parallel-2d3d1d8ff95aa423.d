/root/repo/target/debug/deps/soc_parallel-2d3d1d8ff95aa423.d: crates/soc-parallel/src/lib.rs crates/soc-parallel/src/metrics.rs crates/soc-parallel/src/par_iter.rs crates/soc-parallel/src/pipeline.rs crates/soc-parallel/src/pool.rs crates/soc-parallel/src/simcore.rs crates/soc-parallel/src/sync/mod.rs crates/soc-parallel/src/sync/barrier.rs crates/soc-parallel/src/sync/buffer.rs crates/soc-parallel/src/sync/event.rs crates/soc-parallel/src/sync/semaphore.rs crates/soc-parallel/src/sync/spinlock.rs crates/soc-parallel/src/workloads.rs

/root/repo/target/debug/deps/soc_parallel-2d3d1d8ff95aa423: crates/soc-parallel/src/lib.rs crates/soc-parallel/src/metrics.rs crates/soc-parallel/src/par_iter.rs crates/soc-parallel/src/pipeline.rs crates/soc-parallel/src/pool.rs crates/soc-parallel/src/simcore.rs crates/soc-parallel/src/sync/mod.rs crates/soc-parallel/src/sync/barrier.rs crates/soc-parallel/src/sync/buffer.rs crates/soc-parallel/src/sync/event.rs crates/soc-parallel/src/sync/semaphore.rs crates/soc-parallel/src/sync/spinlock.rs crates/soc-parallel/src/workloads.rs

crates/soc-parallel/src/lib.rs:
crates/soc-parallel/src/metrics.rs:
crates/soc-parallel/src/par_iter.rs:
crates/soc-parallel/src/pipeline.rs:
crates/soc-parallel/src/pool.rs:
crates/soc-parallel/src/simcore.rs:
crates/soc-parallel/src/sync/mod.rs:
crates/soc-parallel/src/sync/barrier.rs:
crates/soc-parallel/src/sync/buffer.rs:
crates/soc-parallel/src/sync/event.rs:
crates/soc-parallel/src/sync/semaphore.rs:
crates/soc-parallel/src/sync/spinlock.rs:
crates/soc-parallel/src/workloads.rs:
