//! The expendable process for kill -9 chaos campaigns.
//!
//! Two modes, both restartable against the same on-disk state:
//!
//! - `victim store <dir> <id> [<directory_url> <ttl_ms> <renew_ms>]` —
//!   a [`StoreNode`] recovered from `dir`, serving its routes on an
//!   ephemeral port. Prints `READY <url>` and blocks until killed. With
//!   the optional registry triple it also keeps a fenced lease alive,
//!   so elasticity campaigns can watch the node join (and its lease
//!   die) through the lease table.
//! - `victim coordinator <dir> <mortgage_url> <finalize_url> <seed>
//!   <runs> <start> <resume|compensate>` — a durable saga coordinator
//!   over the journal in `dir`. On startup it settles every saga a
//!   previous life left open (printing `SETTLED <id> ...`), then runs
//!   the campaign, announcing `RUN <n>` before each saga so the parent
//!   can time its kill, and `DONE` before a clean exit.

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use soc_chaos::process::{
    application_body, application_key, mortgage_saga, KeyedPost, RecoveryMode,
};
use soc_http::{HttpClient, HttpServer, Transport};
use soc_registry::directory::DirectoryClient;
use soc_store::wal::WalConfig;
use soc_store::{StoreNode, StoreNodeConfig};
use soc_workflow::{SagaConfig, SagaJournal};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("store") if args.len() == 4 || args.len() == 7 => {
            store_mode(&args[2], &args[3], args.get(4..7))
        }
        Some("coordinator") if args.len() == 9 => coordinator_mode(&args[2..]),
        _ => {
            eprintln!(
                "usage: victim store <dir> <id> [<directory_url> <ttl_ms> <renew_ms>]\n       \
                 victim coordinator <dir> <mortgage_url> <finalize_url> \
                 <seed> <runs> <start> <resume|compensate>"
            );
            std::process::exit(2);
        }
    }
}

fn say(line: String) {
    println!("{line}");
    std::io::stdout().flush().ok();
}

fn store_mode(dir: &str, id: &str, registry: Option<&[String]>) {
    let transport: Arc<dyn Transport> = Arc::new(HttpClient::new());
    let node =
        StoreNode::open(StoreNodeConfig::new(id), dir, transport.clone()).expect("open store node");
    let server = HttpServer::bind("127.0.0.1:0", 2, node.router()).expect("bind store node");
    // Keep a fenced lease alive for elasticity campaigns; it dies with
    // the process, which is exactly the failure being rehearsed.
    let _keeper = registry.map(|r| {
        let ttl: u64 = r[1].parse().expect("ttl_ms must be a u64");
        let renew: u64 = r[2].parse().expect("renew_ms must be a u64");
        node.start_lease_keeper(
            DirectoryClient::new(transport.clone(), &r[0]),
            &server.url(),
            Duration::from_millis(ttl),
            Duration::from_millis(renew),
        )
    });
    say(format!("READY {}", server.url()));
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn coordinator_mode(args: &[String]) {
    let dir = &args[0];
    let mortgage = args[1].trim_end_matches('/').to_string();
    let finalize = args[2].trim_end_matches('/').to_string();
    let seed: u64 = args[3].parse().expect("seed must be a u64");
    let runs: usize = args[4].parse().expect("runs must be a usize");
    let start: usize = args[5].parse().expect("start must be a usize");
    let mode = RecoveryMode::parse(&args[6]).expect("mode must be resume|compensate");

    let journal = SagaJournal::open(dir, WalConfig::default()).expect("open saga journal");
    let transport: Arc<dyn Transport> = Arc::new(HttpClient::new());
    let saga_cfg = SagaConfig::default();
    let build = |run: usize| {
        mortgage_saga(
            &transport,
            &mortgage,
            &application_key(seed, run),
            application_body(seed, run),
            KeyedPost::new(transport.clone(), format!("{finalize}/finalize"), None, "decision"),
        )
    };

    // Settle whatever a previous life left open before taking on new
    // work — the restart half of the durability contract.
    let mut settled = HashSet::new();
    for saga_id in journal.incomplete() {
        let run: usize = saga_id.strip_prefix("saga-").and_then(|s| s.parse().ok()).unwrap_or(0);
        let g = build(run);
        match mode {
            RecoveryMode::Resume => {
                g.resume_saga(&journal, &saga_id, &HashMap::new(), &saga_cfg).expect("resume saga");
                say(format!("SETTLED {saga_id} resumed"));
            }
            RecoveryMode::Compensate => {
                let (_, errors) = g.compensate_saga(&journal, &saga_id);
                assert!(errors.is_empty(), "compensation errors: {errors:?}");
                say(format!("SETTLED {saga_id} compensated"));
            }
        }
        settled.insert(saga_id);
    }

    // Re-walking runs an earlier life already finished is deliberate:
    // their keyed applies must dedupe at the ledger, not duplicate.
    for run in start..runs {
        let saga_id = format!("saga-{run}");
        if settled.contains(&saga_id) {
            continue;
        }
        say(format!("RUN {run}"));
        let g = build(run);
        g.run_saga_durable(&journal, &saga_id, &HashMap::new(), &saga_cfg).expect("saga run");
        say(format!("ENDED {run}"));
    }
    say("DONE".to_string());
}
