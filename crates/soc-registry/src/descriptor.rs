//! Service descriptors: the registry's unit of publication.

use soc_json::{json, Value};
use soc_xml::{Document, NodeId};

/// How a service is invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Binding {
    /// RESTful HTTP + JSON.
    Rest,
    /// SOAP envelopes with a WSDL contract.
    Soap,
    /// A workflow-composed service.
    Workflow,
    /// Linked into the host process (the course's "component" case).
    InProcess,
}

impl Binding {
    /// Stable token used in documents.
    pub fn as_str(self) -> &'static str {
        match self {
            Binding::Rest => "rest",
            Binding::Soap => "soap",
            Binding::Workflow => "workflow",
            Binding::InProcess => "in-process",
        }
    }

    /// Parse the token.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "rest" => Binding::Rest,
            "soap" => Binding::Soap,
            "workflow" => Binding::Workflow,
            "in-process" => Binding::InProcess,
            _ => return None,
        })
    }
}

/// A published service description — the row a directory stores and a
/// crawler aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDescriptor {
    /// Unique id within a directory (and, by convention, globally).
    pub id: String,
    /// Display name.
    pub name: String,
    /// Free-text description (indexed by the search engine).
    pub description: String,
    /// Category, e.g. "security", "commerce", "robotics".
    pub category: String,
    /// Extra keywords (indexed).
    pub keywords: Vec<String>,
    /// Invocation endpoint (`mem://…` or `http://…`).
    pub endpoint: String,
    /// Invocation binding.
    pub binding: Binding,
    /// Provider name.
    pub provider: String,
    /// Where the service's WSDL contract can be fetched, if it has
    /// one. Crawlers follow this to recover typed port signatures.
    pub wsdl: Option<String>,
}

impl ServiceDescriptor {
    /// Create a descriptor with required fields; extend via struct
    /// update or the builder-ish setters below.
    pub fn new(id: &str, name: &str, endpoint: &str, binding: Binding) -> Self {
        ServiceDescriptor {
            id: id.to_string(),
            name: name.to_string(),
            description: String::new(),
            category: "general".to_string(),
            keywords: Vec::new(),
            endpoint: endpoint.to_string(),
            binding,
            provider: "unknown".to_string(),
            wsdl: None,
        }
    }

    /// Builder: description.
    pub fn describe(mut self, text: &str) -> Self {
        self.description = text.to_string();
        self
    }

    /// Builder: category.
    pub fn category(mut self, cat: &str) -> Self {
        self.category = cat.to_string();
        self
    }

    /// Builder: keywords.
    pub fn keywords(mut self, words: &[&str]) -> Self {
        self.keywords = words.iter().map(|w| w.to_string()).collect();
        self
    }

    /// Builder: provider.
    pub fn provider(mut self, name: &str) -> Self {
        self.provider = name.to_string();
        self
    }

    /// Builder: WSDL contract URL.
    pub fn wsdl(mut self, url: &str) -> Self {
        self.wsdl = Some(url.to_string());
        self
    }

    /// JSON form used by the directory's REST API.
    pub fn to_json(&self) -> Value {
        let mut v = json!({
            "id": (self.id.clone()),
            "name": (self.name.clone()),
            "description": (self.description.clone()),
            "category": (self.category.clone()),
            "keywords": (self.keywords.clone()),
            "endpoint": (self.endpoint.clone()),
            "binding": (self.binding.as_str()),
            "provider": (self.provider.clone())
        });
        if let Some(url) = &self.wsdl {
            v.set("wsdl", url.as_str());
        }
        v
    }

    /// Parse the JSON form. Returns a message for humans on failure.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field {k:?}"))
        };
        let binding =
            Binding::parse(&field("binding")?).ok_or_else(|| "unknown binding".to_string())?;
        let keywords = v
            .get("keywords")
            .and_then(Value::as_array)
            .map(|a| a.iter().filter_map(Value::as_str).map(str::to_string).collect())
            .unwrap_or_default();
        Ok(ServiceDescriptor {
            id: field("id")?,
            name: field("name")?,
            description: field("description").unwrap_or_default(),
            category: field("category").unwrap_or_else(|_| "general".into()),
            keywords,
            endpoint: field("endpoint")?,
            binding,
            provider: field("provider").unwrap_or_else(|_| "unknown".into()),
            wsdl: v.get("wsdl").and_then(Value::as_str).map(str::to_string),
        })
    }

    /// Append this descriptor as a `<service>` element under `parent`.
    pub fn write_xml(&self, doc: &mut Document, parent: NodeId) {
        let el = doc.add_element(parent, "service");
        doc.set_attr(el, "id", self.id.clone());
        doc.set_attr(el, "binding", self.binding.as_str());
        doc.add_text_element(el, "name", self.name.clone());
        doc.add_text_element(el, "description", self.description.clone());
        doc.add_text_element(el, "category", self.category.clone());
        doc.add_text_element(el, "endpoint", self.endpoint.clone());
        doc.add_text_element(el, "provider", self.provider.clone());
        if let Some(url) = &self.wsdl {
            doc.add_text_element(el, "wsdl", url.clone());
        }
        let kw = doc.add_element(el, "keywords");
        for k in &self.keywords {
            doc.add_text_element(kw, "keyword", k.clone());
        }
    }

    /// Parse a `<service>` element.
    pub fn read_xml(doc: &Document, el: NodeId) -> Result<Self, String> {
        let id = doc.attr(el, "id").ok_or("service missing id")?.to_string();
        let binding = doc
            .attr(el, "binding")
            .and_then(Binding::parse)
            .ok_or("service missing/unknown binding")?;
        let text = |name: &str| doc.child_text(el, name).unwrap_or_default();
        let keywords = doc
            .find_child(el, "keywords")
            .map(|kw| doc.find_children(kw, "keyword").map(|k| doc.text(k)).collect())
            .unwrap_or_default();
        Ok(ServiceDescriptor {
            id,
            name: text("name"),
            description: text("description"),
            category: text("category"),
            keywords,
            endpoint: text("endpoint"),
            binding,
            provider: text("provider"),
            wsdl: doc.child_text(el, "wsdl"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServiceDescriptor {
        ServiceDescriptor::new(
            "enc-1",
            "Encryption Service",
            "mem://services/encrypt",
            Binding::Rest,
        )
        .describe("Encrypts & decrypts text with a shared key")
        .category("security")
        .keywords(&["cipher", "crypto"])
        .provider("asu")
        .wsdl("mem://services/wsdl/enc-1")
    }

    #[test]
    fn json_round_trip() {
        let d = sample();
        let j = d.to_json();
        assert_eq!(ServiceDescriptor::from_json(&j).unwrap(), d);
    }

    #[test]
    fn json_missing_fields_reported() {
        let v = json!({ "id": "x" });
        let err = ServiceDescriptor::from_json(&v).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn json_unknown_binding_rejected() {
        let mut j = sample().to_json();
        j.set("binding", "quantum");
        assert!(ServiceDescriptor::from_json(&j).is_err());
    }

    #[test]
    fn xml_round_trip() {
        let d = sample();
        let mut doc = Document::new("services");
        let root = doc.root();
        d.write_xml(&mut doc, root);
        let xml = doc.to_xml();
        let reparsed = Document::parse_str(&xml).unwrap();
        let el = reparsed.find_child(reparsed.root(), "service").unwrap();
        assert_eq!(ServiceDescriptor::read_xml(&reparsed, el).unwrap(), d);
    }

    #[test]
    fn xml_escaping_in_description() {
        let d = sample(); // description contains '&'
        let mut doc = Document::new("services");
        let root = doc.root();
        d.write_xml(&mut doc, root);
        assert!(doc.to_xml().contains("&amp;"));
    }

    #[test]
    fn binding_tokens() {
        for b in [Binding::Rest, Binding::Soap, Binding::Workflow, Binding::InProcess] {
            assert_eq!(Binding::parse(b.as_str()), Some(b));
        }
        assert_eq!(Binding::parse("x"), None);
    }
}
