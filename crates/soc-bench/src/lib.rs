//! # soc-bench — the benchmark and reproduction harness
//!
//! One binary per paper table/figure (see `src/bin/`) and one Criterion
//! bench per performance question (see `benches/`). DESIGN.md carries
//! the full experiment index; EXPERIMENTS.md records paper-vs-measured.
//!
//! This library holds the workload generators the binaries and benches
//! share.

use soc_registry::descriptor::{Binding, ServiceDescriptor};

/// Deterministic pseudo-random u64 stream (SplitMix64) — benches avoid
/// pulling `rand` into hot loops.
pub struct SplitMix(pub u64);

impl SplitMix {
    /// Next value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `n`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

const WORDS: &[&str] = &[
    "service",
    "cloud",
    "robot",
    "maze",
    "cart",
    "cipher",
    "image",
    "captcha",
    "credit",
    "mortgage",
    "queue",
    "cache",
    "password",
    "workflow",
    "soap",
    "rest",
    "xml",
    "registry",
    "broker",
    "client",
    "provider",
    "discovery",
    "composition",
    "integration",
    "distributed",
    "parallel",
    "thread",
    "lock",
    "event",
    "semaphore",
];

/// Generate `n` synthetic service descriptors with word-salad
/// descriptions (the registry/search corpus).
pub fn synthetic_catalog(n: usize, seed: u64) -> Vec<ServiceDescriptor> {
    let mut rng = SplitMix(seed);
    (0..n)
        .map(|i| {
            let words: Vec<&str> =
                (0..8).map(|_| WORDS[rng.below(WORDS.len() as u64) as usize]).collect();
            let kw1 = WORDS[rng.below(WORDS.len() as u64) as usize];
            let kw2 = WORDS[rng.below(WORDS.len() as u64) as usize];
            ServiceDescriptor::new(
                &format!("svc-{i}"),
                &format!("{} {} service {i}", words[0], words[1]),
                &format!("mem://host-{}/{i}", rng.below(16)),
                if i % 3 == 0 { Binding::Soap } else { Binding::Rest },
            )
            .describe(&words.join(" "))
            .category(WORDS[rng.below(8) as usize])
            .keywords(&[kw1, kw2])
        })
        .collect()
}

/// Generate a synthetic XML document with `breadth` children per node
/// and `depth` levels (the XML bench corpus).
///
/// The shape mirrors the messages the rest of the workspace actually
/// moves: dense element structure with short attributes, leaf elements
/// carrying sentence-length description text, and occasional endpoint
/// URIs — the mix found in SOAP envelopes and registry catalogs, where
/// payload text (not markup) is most of the bytes on the wire.
pub fn synthetic_xml(breadth: usize, depth: usize) -> String {
    fn emit(out: &mut String, breadth: usize, depth: usize, rng: &mut SplitMix) {
        if depth == 0 {
            // Leaf payload: a word-salad description plus a version
            // token, like a descriptor's `describe(..)` text.
            let n = 3 + rng.below(9);
            for k in 0..n {
                if k > 0 {
                    out.push(' ');
                }
                out.push_str(WORDS[rng.below(WORDS.len() as u64) as usize]);
            }
            out.push_str(&format!(" v{}", rng.below(1000)));
            return;
        }
        for i in 0..breadth {
            out.push_str(&format!("<n{} id=\"{}\"", i % 4, rng.below(100)));
            if rng.below(4) == 0 {
                out.push_str(&format!(
                    " uri=\"mem://host-{}/svc-{}\"",
                    rng.below(16),
                    rng.below(1000)
                ));
            }
            out.push('>');
            emit(out, breadth, depth - 1, rng);
            out.push_str(&format!("</n{}>", i % 4));
        }
    }
    let mut out = String::from("<root>");
    let mut rng = SplitMix(7);
    emit(&mut out, breadth, depth, &mut rng);
    out.push_str("</root>");
    out
}

/// Generate a synthetic JSON document with `items` array entries (the
/// JSON bench corpus).
///
/// The shape mirrors what the REST side of the stack actually serves:
/// a service-listing response whose entries carry short ids, word-salad
/// description strings (mostly escape-free — the borrowed-string fast
/// path's common case), numeric QoS fields, nested endpoint objects,
/// and an occasional string needing escapes (a quoted phrase or an
/// embedded newline) so the slow path stays exercised.
pub fn synthetic_json(items: usize) -> String {
    let mut rng = SplitMix(11);
    let word = |rng: &mut SplitMix| WORDS[rng.below(WORDS.len() as u64) as usize];
    let mut out = String::from("{\"services\":[");
    for i in 0..items {
        if i > 0 {
            out.push(',');
        }
        let desc: Vec<&str> = (0..4 + rng.below(8)).map(|_| word(&mut rng)).collect();
        out.push_str(&format!(
            "{{\"id\":\"svc-{i}\",\"name\":\"{} {}\",\"description\":\"{}\"",
            word(&mut rng),
            word(&mut rng),
            desc.join(" ")
        ));
        if rng.below(8) == 0 {
            out.push_str(&format!(
                ",\"note\":\"a \\\"quoted\\\" phrase\\nline {}\"",
                rng.below(100)
            ));
        }
        out.push_str(&format!(
            ",\"cost\":{}.{:02},\"latency_us\":{},\"available\":{}",
            rng.below(100),
            rng.below(100),
            rng.below(100_000),
            rng.below(2) == 0
        ));
        out.push_str(&format!(
            ",\"endpoint\":{{\"uri\":\"mem://host-{}/svc-{i}\",\"binding\":\"{}\",\"port\":{}}}",
            rng.below(16),
            if i % 3 == 0 { "soap" } else { "rest" },
            8000 + rng.below(1000)
        ));
        out.push_str(&format!(",\"tags\":[\"{}\",\"{}\"]}}", word(&mut rng), word(&mut rng)));
    }
    out.push_str("],\"total\":");
    out.push_str(&items.to_string());
    out.push('}');
    out
}

/// Standard table-printing helper for the figure binaries.
pub fn print_rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = SplitMix(1);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix(1);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn catalog_has_unique_ids() {
        let c = synthetic_catalog(100, 3);
        let ids: std::collections::HashSet<&str> = c.iter().map(|d| d.id.as_str()).collect();
        assert_eq!(ids.len(), 100);
        assert!(c.iter().any(|d| d.binding == Binding::Soap));
    }

    #[test]
    fn synthetic_json_parses_and_round_trips() {
        let text = synthetic_json(50);
        let v = soc_json::Value::parse(&text).unwrap();
        assert_eq!(v.pointer("/total").and_then(soc_json::Value::as_i64), Some(50));
        assert_eq!(
            v.pointer("/services").and_then(soc_json::Value::as_array).map(<[_]>::len),
            Some(50)
        );
        assert_eq!(soc_json::Value::parse(&v.to_compact()).unwrap(), v);
        assert_eq!(synthetic_json(50), text, "generator must be deterministic");
    }

    #[test]
    fn synthetic_xml_parses() {
        let xml = synthetic_xml(3, 3);
        let doc = soc_xml::Document::parse_str(&xml).unwrap();
        assert!(doc.len() > 20);
    }
}
