/root/repo/target/release/deps/soc_robotics-8359b24846c9c0a6.d: crates/soc-robotics/src/lib.rs crates/soc-robotics/src/algorithms.rs crates/soc-robotics/src/maze.rs crates/soc-robotics/src/raas.rs crates/soc-robotics/src/robot.rs crates/soc-robotics/src/sync.rs

/root/repo/target/release/deps/libsoc_robotics-8359b24846c9c0a6.rlib: crates/soc-robotics/src/lib.rs crates/soc-robotics/src/algorithms.rs crates/soc-robotics/src/maze.rs crates/soc-robotics/src/raas.rs crates/soc-robotics/src/robot.rs crates/soc-robotics/src/sync.rs

/root/repo/target/release/deps/libsoc_robotics-8359b24846c9c0a6.rmeta: crates/soc-robotics/src/lib.rs crates/soc-robotics/src/algorithms.rs crates/soc-robotics/src/maze.rs crates/soc-robotics/src/raas.rs crates/soc-robotics/src/robot.rs crates/soc-robotics/src/sync.rs

crates/soc-robotics/src/lib.rs:
crates/soc-robotics/src/algorithms.rs:
crates/soc-robotics/src/maze.rs:
crates/soc-robotics/src/raas.rs:
crates/soc-robotics/src/robot.rs:
crates/soc-robotics/src/sync.rs:
