/root/repo/target/debug/deps/fig1_raas-6184e5d96e321081.d: crates/soc-bench/src/bin/fig1_raas.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_raas-6184e5d96e321081.rmeta: crates/soc-bench/src/bin/fig1_raas.rs Cargo.toml

crates/soc-bench/src/bin/fig1_raas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
