//! Admission control: a token-bucket rate limiter plus a hard
//! concurrency cap.
//!
//! The paper's free public services die under load ("services are too
//! slow... often offline"). The gateway protects its upstreams by
//! shedding excess traffic *at the front door* instead of letting a
//! burst melt every replica at once: a token bucket bounds the
//! sustained request rate (with a configurable burst), and a
//! concurrency cap bounds how many requests are in flight through the
//! gateway at any instant.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

const NANOS_PER_SEC: f64 = 1_000_000_000.0;

/// A classic token bucket: `capacity` tokens of burst, refilled at
/// `refill_per_sec` tokens per second. Each admitted request spends one
/// token.
///
/// Time is injected explicitly through [`TokenBucket::try_acquire_at`]
/// (nanoseconds since an arbitrary epoch), which makes the bucket's
/// invariants testable without sleeping; [`TokenBucket::try_acquire`]
/// feeds it the wall clock.
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    epoch: Instant,
    state: Mutex<BucketState>,
}

struct BucketState {
    tokens: f64,
    last_nanos: u64,
}

impl TokenBucket {
    /// A bucket that starts full.
    ///
    /// # Panics
    /// If `capacity` is not positive or `refill_per_sec` is negative.
    pub fn new(capacity: f64, refill_per_sec: f64) -> Self {
        assert!(capacity > 0.0, "token bucket capacity must be positive");
        assert!(refill_per_sec >= 0.0, "refill rate must be non-negative");
        TokenBucket {
            capacity,
            refill_per_sec,
            epoch: Instant::now(),
            state: Mutex::new(BucketState { tokens: capacity, last_nanos: 0 }),
        }
    }

    /// The burst size.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Spend one token against the wall clock.
    pub fn try_acquire(&self) -> bool {
        self.try_acquire_at(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Spend one token at an explicit instant (nanoseconds since the
    /// caller's epoch). Clock rewinds are treated as "no time passed",
    /// so tokens never refill retroactively.
    pub fn try_acquire_at(&self, now_nanos: u64) -> bool {
        let mut s = self.state.lock();
        self.refill(&mut s, now_nanos);
        if s.tokens >= 1.0 {
            s.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens available at an explicit instant (after refill).
    pub fn available_at(&self, now_nanos: u64) -> f64 {
        let mut s = self.state.lock();
        self.refill(&mut s, now_nanos);
        s.tokens
    }

    fn refill(&self, s: &mut BucketState, now_nanos: u64) {
        if now_nanos > s.last_nanos {
            let dt = (now_nanos - s.last_nanos) as f64 / NANOS_PER_SEC;
            s.tokens = (s.tokens + dt * self.refill_per_sec).min(self.capacity);
            s.last_nanos = now_nanos;
        }
    }
}

/// Per-key token buckets: one [`TokenBucket`] per service name, lazily
/// created, all sharing one capacity/refill tuning. Layered *under* the
/// gateway's global bucket, this is the per-service admission quota —
/// one hot service exhausts its own bucket and gets shed while every
/// other service still has its full burst available, so a single
/// popular endpoint cannot starve the rest of the gateway.
///
/// A non-positive `capacity` disables the layer: [`KeyedBuckets::try_acquire`]
/// then always admits.
pub struct KeyedBuckets {
    capacity: f64,
    refill_per_sec: f64,
    buckets: parking_lot::RwLock<std::collections::HashMap<String, Arc<TokenBucket>>>,
}

impl KeyedBuckets {
    /// Quota buckets of `capacity` burst and `refill_per_sec` refill per
    /// key. `capacity <= 0` disables per-key limiting entirely.
    pub fn new(capacity: f64, refill_per_sec: f64) -> Self {
        KeyedBuckets {
            capacity,
            refill_per_sec,
            buckets: parking_lot::RwLock::new(std::collections::HashMap::new()),
        }
    }

    /// Is per-key limiting active?
    pub fn enabled(&self) -> bool {
        self.capacity > 0.0
    }

    /// Spend one token from `key`'s bucket (always admits when
    /// disabled). The bucket is created full on first sight of a key.
    pub fn try_acquire(&self, key: &str) -> bool {
        if !self.enabled() {
            return true;
        }
        self.bucket(key).try_acquire()
    }

    /// `key`'s bucket, created on first use.
    pub fn bucket(&self, key: &str) -> Arc<TokenBucket> {
        if let Some(b) = self.buckets.read().get(key) {
            return b.clone();
        }
        self.buckets
            .write()
            .entry(key.to_string())
            .or_insert_with(|| Arc::new(TokenBucket::new(self.capacity, self.refill_per_sec)))
            .clone()
    }

    /// Keys with a materialized bucket, sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.buckets.read().keys().cloned().collect();
        keys.sort();
        keys
    }
}

/// A cap on concurrent in-flight requests. [`ConcurrencyLimit::try_acquire`]
/// returns a permit that releases its slot on drop; when the cap is
/// reached the caller should shed.
pub struct ConcurrencyLimit {
    max: usize,
    in_flight: Arc<AtomicUsize>,
}

/// An acquired slot; dropping it frees the slot.
pub struct ConcurrencyPermit {
    in_flight: Arc<AtomicUsize>,
}

impl ConcurrencyLimit {
    /// A limit admitting at most `max` concurrent holders.
    pub fn new(max: usize) -> Self {
        ConcurrencyLimit { max, in_flight: Arc::new(AtomicUsize::new(0)) }
    }

    /// Try to claim a slot.
    pub fn try_acquire(&self) -> Option<ConcurrencyPermit> {
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            if cur >= self.max {
                return None;
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(ConcurrencyPermit { in_flight: self.in_flight.clone() }),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current holders.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// The cap.
    pub fn max(&self) -> usize {
        self.max
    }
}

impl Drop for ConcurrencyPermit {
    fn drop(&mut self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_empty() {
        let b = TokenBucket::new(3.0, 0.0);
        assert!(b.try_acquire_at(0));
        assert!(b.try_acquire_at(0));
        assert!(b.try_acquire_at(0));
        assert!(!b.try_acquire_at(0));
    }

    #[test]
    fn refills_over_time_but_never_past_capacity() {
        let b = TokenBucket::new(2.0, 1.0); // 1 token/s
        assert!(b.try_acquire_at(0));
        assert!(b.try_acquire_at(0));
        assert!(!b.try_acquire_at(0));
        // Half a second: half a token — still not enough.
        assert!(!b.try_acquire_at(500_000_000));
        // Another second: over one token available.
        assert!(b.try_acquire_at(1_500_000_000));
        // A long idle stretch refills to capacity, not beyond.
        let far = 1_000 * 1_000_000_000;
        assert!((b.available_at(far) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn clock_rewind_is_harmless() {
        let b = TokenBucket::new(1.0, 1000.0);
        assert!(b.try_acquire_at(1_000_000));
        // Time "goes backwards": no refill, no panic.
        assert!(!b.try_acquire_at(0));
    }

    #[test]
    fn keyed_buckets_isolate_services() {
        let q = KeyedBuckets::new(2.0, 0.0);
        assert!(q.enabled());
        // Service "hot" burns its quota…
        assert!(q.try_acquire("hot"));
        assert!(q.try_acquire("hot"));
        assert!(!q.try_acquire("hot"));
        // …while "cold" still has its full burst.
        assert!(q.try_acquire("cold"));
        assert_eq!(q.keys(), vec!["cold", "hot"]);
    }

    #[test]
    fn disabled_keyed_buckets_always_admit() {
        let q = KeyedBuckets::new(0.0, 0.0);
        assert!(!q.enabled());
        for _ in 0..100 {
            assert!(q.try_acquire("any"));
        }
        assert!(q.keys().is_empty(), "disabled quotas must not materialize buckets");
    }

    #[test]
    fn concurrency_permits_release_on_drop() {
        let l = ConcurrencyLimit::new(2);
        let a = l.try_acquire().unwrap();
        let _b = l.try_acquire().unwrap();
        assert!(l.try_acquire().is_none());
        assert_eq!(l.in_flight(), 2);
        drop(a);
        assert_eq!(l.in_flight(), 1);
        assert!(l.try_acquire().is_some());
    }
}
