//! Property-based tests for the XML stack: serialization/parsing
//! round-trips, SAX/DOM agreement, and XPath-vs-manual-walk oracles.

use proptest::prelude::*;
use soc_xml::escape::{escape_attr, escape_text, unescape};
use soc_xml::sax;
use soc_xml::{xpath, Document};

/// Arbitrary element name (small alphabet keeps shrunk cases readable).
fn name_strategy() -> impl Strategy<Value = String> {
    "[a-f]{1,4}"
}

/// Arbitrary text payload including XML-hostile characters.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~中é\\n\\t]{0,24}").unwrap()
}

/// A recursively generated document tree, rendered through the builder
/// API so the serializer is the only encoder involved.
#[derive(Debug, Clone)]
enum Tree {
    Text(String),
    Element { name: String, attrs: Vec<(String, String)>, children: Vec<Tree> },
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = text_strategy().prop_map(Tree::Text);
    leaf.prop_recursive(4, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec(("[g-k]{1,3}", text_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| Tree::Element { name, attrs, children })
    })
}

fn build(doc: &mut Document, parent: soc_xml::NodeId, tree: &Tree) {
    match tree {
        Tree::Text(t) => {
            doc.add_text(parent, t.clone());
        }
        Tree::Element { name, attrs, children } => {
            let el = doc.add_element(parent, name.as_str());
            let mut seen = std::collections::HashSet::new();
            for (k, v) in attrs {
                if seen.insert(k.clone()) {
                    doc.set_attr(el, k.as_str(), v.clone());
                }
            }
            for c in children {
                build(doc, el, c);
            }
        }
    }
}

fn tree_text(tree: &Tree, out: &mut String) {
    match tree {
        Tree::Text(t) => out.push_str(t),
        Tree::Element { children, .. } => {
            for c in children {
                tree_text(c, out);
            }
        }
    }
}

proptest! {
    #[test]
    fn escape_unescape_text_round_trip(s in text_strategy()) {
        let esc = escape_text(&s);
        prop_assert_eq!(unescape(&esc, Default::default()).unwrap(), s);
    }

    #[test]
    fn escape_unescape_attr_round_trip(s in text_strategy()) {
        let esc = escape_attr(&s);
        prop_assert_eq!(unescape(&esc, Default::default()).unwrap(), s);
    }

    #[test]
    fn build_serialize_parse_round_trip(tree in tree_strategy()) {
        let mut doc = Document::new("root");
        let root = doc.root();
        build(&mut doc, root, &tree);
        let xml = doc.to_xml();
        let reparsed = Document::parse_str_keep_whitespace(&xml).unwrap();
        // Serialized forms must be identical (canonical form fixpoint).
        prop_assert_eq!(reparsed.to_xml(), xml);
        // And total text content must survive.
        let mut expect = String::new();
        tree_text(&tree, &mut expect);
        prop_assert_eq!(reparsed.text(reparsed.root()), expect);
    }

    #[test]
    fn sax_and_dom_agree_on_structure(tree in tree_strategy()) {
        let mut doc = Document::new("root");
        let root = doc.root();
        build(&mut doc, root, &tree);
        let xml = doc.to_xml();
        let stats = sax::statistics(&xml).unwrap();
        let elements = doc
            .descendants(doc.root())
            .into_iter()
            .filter(|&n| doc.name(n).is_some())
            .count();
        prop_assert_eq!(stats.elements, elements);
    }

    #[test]
    fn xpath_descendant_matches_manual_walk(tree in tree_strategy()) {
        let mut doc = Document::new("root");
        let root = doc.root();
        build(&mut doc, root, &tree);
        // Oracle: count descendants named "a" by manual walk.
        let manual = doc
            .descendants(doc.root())
            .into_iter()
            .filter(|&n| doc.name(n).is_some_and(|q| q.local == "a"))
            .count();
        let via_xpath = xpath::eval("//a", &doc).unwrap().len();
        // `//a` excludes nothing: the root is named "root", never "a".
        prop_assert_eq!(via_xpath, manual);
    }

    #[test]
    fn pretty_and_compact_have_same_text_modulo_structure(tree in tree_strategy()) {
        let mut doc = Document::new("root");
        let root = doc.root();
        build(&mut doc, root, &tree);
        let compact = Document::parse_str_keep_whitespace(&doc.to_xml()).unwrap();
        let pretty = Document::parse_str_keep_whitespace(&doc.to_pretty_xml()).unwrap();
        // Element counts always agree between the two serializations.
        let count = |d: &Document| {
            d.descendants(d.root()).into_iter().filter(|&n| d.name(n).is_some()).count()
        };
        prop_assert_eq!(count(&compact), count(&pretty));
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "[ -~<>&'\"]{0,64}") {
        let _ = Document::parse_str(&s); // error is fine, panic is not
    }

    #[test]
    fn attribute_values_survive_round_trip(
        k in "[a-z]{1,5}",
        v in text_strategy(),
    ) {
        let mut doc = Document::new("r");
        doc.set_attr(doc.root(), k.as_str(), v.clone());
        let reparsed = Document::parse_str(&doc.to_xml()).unwrap();
        prop_assert_eq!(reparsed.attr(reparsed.root(), &k), Some(v.as_str()));
    }
}
