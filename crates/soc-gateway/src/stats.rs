//! Gateway observability: per-upstream counters and latency
//! histograms, snapshotted as JSON on `/gateway/stats`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use soc_json::Value;

/// Histogram bucket upper bounds, in microseconds. Requests slower
/// than the last bound land in an implicit overflow bucket.
pub const LATENCY_BUCKETS_US: [u64; 12] =
    [100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 500_000, 1_000_000];

const BUCKETS: usize = LATENCY_BUCKETS_US.len() + 1;

/// A fixed-bucket latency histogram. Lock-free on the record path.
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let idx = LATENCY_BUCKETS_US.iter().position(|&bound| us <= bound).unwrap_or(BUCKETS - 1);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed).checked_div(self.count()).unwrap_or(0)
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile, or
    /// `None` when empty. The overflow bucket reports the last bound —
    /// "at least this slow".
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(*LATENCY_BUCKETS_US.get(i).unwrap_or(LATENCY_BUCKETS_US.last()?));
            }
        }
        LATENCY_BUCKETS_US.last().copied()
    }

    /// `(upper_bound_us, count)` pairs for the non-empty buckets; the
    /// overflow bucket reports `None` as its bound.
    pub fn buckets(&self) -> Vec<(Option<u64>, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                if n == 0 {
                    None
                } else {
                    Some((LATENCY_BUCKETS_US.get(i).copied(), n))
                }
            })
            .collect()
    }
}

/// Counters for one upstream replica.
#[derive(Default)]
pub struct UpstreamStats {
    /// Proxied requests sent (including retries).
    pub requests: AtomicU64,
    /// Requests answered without an upstream failure.
    pub successes: AtomicU64,
    /// 5xx answers and transport errors.
    pub failures: AtomicU64,
    /// Requests that were retry attempts (second try onward).
    pub retries: AtomicU64,
    /// Requests in flight right now.
    pub in_flight: AtomicUsize,
    /// Latency of every proxied request.
    pub histogram: LatencyHistogram,
}

/// Gateway-wide counters plus the per-upstream table.
#[derive(Default)]
pub struct GatewayStats {
    upstreams: RwLock<HashMap<String, Arc<UpstreamStats>>>,
    /// Requests admitted past rate limiting and the concurrency cap.
    pub admitted: AtomicU64,
    /// Requests shed by the token bucket.
    pub shed_rate: AtomicU64,
    /// Requests shed by the concurrency cap.
    pub shed_load: AtomicU64,
    /// Requests shed by a per-service admission quota.
    pub shed_service: AtomicU64,
    /// Requests that ran out of deadline inside the gateway.
    pub deadline_exceeded: AtomicU64,
    /// Requests for services with no known replicas.
    pub no_upstream: AtomicU64,
    /// Backup requests launched because a primary crossed its hedge
    /// delay.
    pub hedges_launched: AtomicU64,
    /// Hedged requests where the backup's answer won the race.
    pub hedges_won: AtomicU64,
    /// Outlier-ejection events (re-ejections after re-admission count
    /// again).
    pub ejections: AtomicU64,
}

impl GatewayStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stats cell for `endpoint`, created on first use.
    pub fn upstream(&self, endpoint: &str) -> Arc<UpstreamStats> {
        if let Some(s) = self.upstreams.read().get(endpoint) {
            return s.clone();
        }
        self.upstreams
            .write()
            .entry(endpoint.to_string())
            .or_insert_with(|| Arc::new(UpstreamStats::default()))
            .clone()
    }

    /// Endpoints seen so far, sorted.
    pub fn upstream_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.upstreams.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Total requests shed for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_rate.load(Ordering::Relaxed)
            + self.shed_load.load(Ordering::Relaxed)
            + self.shed_service.load(Ordering::Relaxed)
    }

    /// Snapshot as JSON. `breaker_label` supplies each upstream's
    /// breaker state ("closed" / "open" / "half-open"); `ejected`
    /// whether the replica is currently held out of balancing.
    pub fn to_json(
        &self,
        policy: &str,
        breaker_label: impl Fn(&str) -> &'static str,
        ejected: impl Fn(&str) -> bool,
    ) -> Value {
        let mut shed = Value::Object(vec![]);
        shed.set("rate", self.shed_rate.load(Ordering::Relaxed) as i64);
        shed.set("load", self.shed_load.load(Ordering::Relaxed) as i64);
        shed.set("service_quota", self.shed_service.load(Ordering::Relaxed) as i64);
        shed.set("total", self.shed_total() as i64);

        let mut hedges = Value::Object(vec![]);
        hedges.set("launched", self.hedges_launched.load(Ordering::Relaxed) as i64);
        hedges.set("won", self.hedges_won.load(Ordering::Relaxed) as i64);

        let mut upstreams = Value::Object(vec![]);
        for name in self.upstream_names() {
            let s = self.upstream(&name);
            let mut u = Value::Object(vec![]);
            u.set("requests", s.requests.load(Ordering::Relaxed) as i64);
            u.set("successes", s.successes.load(Ordering::Relaxed) as i64);
            u.set("failures", s.failures.load(Ordering::Relaxed) as i64);
            u.set("retries", s.retries.load(Ordering::Relaxed) as i64);
            u.set("in_flight", s.in_flight.load(Ordering::Relaxed) as i64);
            u.set("breaker", breaker_label(&name));
            u.set("ejected", ejected(&name));
            u.set("mean_latency_us", s.histogram.mean_us() as i64);
            if let Some(p50) = s.histogram.quantile_us(0.50) {
                u.set("p50_latency_us", p50 as i64);
            }
            if let Some(p99) = s.histogram.quantile_us(0.99) {
                u.set("p99_latency_us", p99 as i64);
            }
            let buckets: Vec<Value> = s
                .histogram
                .buckets()
                .into_iter()
                .map(|(bound, n)| {
                    Value::Array(vec![
                        bound.map(|b| Value::from(b as i64)).unwrap_or(Value::Null),
                        Value::from(n as i64),
                    ])
                })
                .collect();
            u.set("latency_buckets_us", Value::Array(buckets));
            upstreams.set(name, u);
        }

        let mut root = Value::Object(vec![]);
        root.set("policy", policy);
        root.set("admitted", self.admitted.load(Ordering::Relaxed) as i64);
        root.set("shed", shed);
        root.set("deadline_exceeded", self.deadline_exceeded.load(Ordering::Relaxed) as i64);
        root.set("no_upstream", self.no_upstream.load(Ordering::Relaxed) as i64);
        root.set("hedges", hedges);
        root.set("ejections", self.ejections.load(Ordering::Relaxed) as i64);
        root.set("upstreams", upstreams);
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::new();
        for ms in [1u64, 1, 1, 2, 4, 9, 40, 400] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 8);
        // Rank 4 of 8: three 1 ms samples fill the 1000 µs bucket, the
        // 2 ms sample tips the median into the 2500 µs bucket.
        assert_eq!(h.quantile_us(0.5), Some(2_500));
        assert_eq!(h.quantile_us(1.0), Some(500_000));
        assert!(h.mean_us() > 0);
        let total: u64 = h.buckets().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_secs(5));
        let buckets = h.buckets();
        assert_eq!(buckets, vec![(None, 1)]);
        assert_eq!(h.quantile_us(0.5), Some(1_000_000));
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.mean_us(), 0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn stats_json_snapshot() {
        let stats = GatewayStats::new();
        stats.admitted.fetch_add(3, Ordering::Relaxed);
        stats.shed_rate.fetch_add(1, Ordering::Relaxed);
        stats.shed_service.fetch_add(2, Ordering::Relaxed);
        stats.hedges_launched.fetch_add(4, Ordering::Relaxed);
        stats.hedges_won.fetch_add(1, Ordering::Relaxed);
        stats.ejections.fetch_add(1, Ordering::Relaxed);
        let up = stats.upstream("mem://a");
        up.requests.fetch_add(3, Ordering::Relaxed);
        up.successes.fetch_add(2, Ordering::Relaxed);
        up.failures.fetch_add(1, Ordering::Relaxed);
        up.histogram.record(Duration::from_millis(2));
        let v = stats.to_json("round-robin", |_| "closed", |_| true);
        let text = v.to_string();
        assert!(text.contains("\"policy\""));
        let parsed = Value::parse(&text).unwrap();
        assert_eq!(
            parsed.pointer("/upstreams/mem:~1~1a/requests").and_then(Value::as_i64),
            Some(3)
        );
        assert_eq!(v.pointer("/admitted").and_then(Value::as_i64), Some(3));
        assert_eq!(v.pointer("/shed/service_quota").and_then(Value::as_i64), Some(2));
        assert_eq!(v.pointer("/shed/total").and_then(Value::as_i64), Some(3));
        assert_eq!(v.pointer("/hedges/launched").and_then(Value::as_i64), Some(4));
        assert_eq!(v.pointer("/hedges/won").and_then(Value::as_i64), Some(1));
        assert_eq!(v.pointer("/ejections").and_then(Value::as_i64), Some(1));
        assert_eq!(
            v.pointer("/upstreams/mem:~1~1a/breaker").and_then(Value::as_str),
            Some("closed")
        );
        assert_eq!(v.pointer("/upstreams/mem:~1~1a/ejected").and_then(Value::as_bool), Some(true));
    }
}
