/root/repo/target/debug/deps/proptests-6f35d5d58195382a.d: crates/soc-xml/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6f35d5d58195382a: crates/soc-xml/tests/proptests.rs

crates/soc-xml/tests/proptests.rs:
