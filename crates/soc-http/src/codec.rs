//! Wire-level encoding and decoding of HTTP/1.1 messages.
//!
//! Supports `Content-Length` and `Transfer-Encoding: chunked` bodies in
//! both directions, with a configurable body size limit (dependability
//! unit: a service must bound attacker-controlled allocations).

use std::io::{BufRead, Write};

use crate::types::{Headers, HttpError, HttpResult, Method, Request, Response, Status, Version};

/// Default maximum accepted body size (8 MiB).
pub const DEFAULT_BODY_LIMIT: usize = 8 * 1024 * 1024;

/// Maximum accepted header section size.
pub(crate) const HEADER_LIMIT: usize = 64 * 1024;

fn read_line<R: BufRead>(r: &mut R, budget: &mut usize) -> HttpResult<String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            // EOF mid-line is truncation, even when some bytes arrived:
            // a request/status line without its terminator must not
            // parse as well-formed.
            0 => return Err(HttpError::UnexpectedEof),
            _ => {
                if *budget == 0 {
                    return Err(HttpError::Malformed("header section too large".into()));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::Malformed("non-UTF-8 header line".into()))
}

fn read_headers<R: BufRead>(r: &mut R, budget: &mut usize) -> HttpResult<Headers> {
    let mut headers = Headers::new();
    loop {
        let line = read_line(r, budget)?;
        if line.is_empty() {
            return Ok(headers);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line: {line}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name: {name:?}")));
        }
        headers.add(name.trim(), value.trim());
    }
}

/// Strict `Content-Length` parsing: optional surrounding OWS, then
/// ASCII digits only. `usize::parse` alone would accept `"+10"`, and a
/// front-end and back-end disagreeing on such a value is the classic
/// request-smuggling foothold.
fn parse_content_length(v: &str) -> HttpResult<usize> {
    let t = v.trim();
    if t.is_empty() || !t.bytes().all(|b| b.is_ascii_digit()) {
        return Err(HttpError::Malformed(format!("bad Content-Length: {v:?}")));
    }
    t.parse().map_err(|_| HttpError::Malformed(format!("bad Content-Length: {v:?}")))
}

/// How an incoming message's body is framed on the wire. Shared by the
/// blocking reader below and the reactor's incremental parser, so both
/// transports reject the same smuggling-shaped messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BodyFraming {
    Length(usize),
    Chunked,
}

pub(crate) fn body_framing(headers: &Headers, limit: usize) -> HttpResult<BodyFraming> {
    if let Some(te) = headers.get("Transfer-Encoding") {
        // RFC 9112 §6.1: a message with both framings is a smuggling
        // vector — two parsers can disagree on where it ends. Reject
        // outright instead of picking a winner.
        if headers.contains("Content-Length") {
            return Err(HttpError::Malformed(
                "both Content-Length and Transfer-Encoding present".into(),
            ));
        }
        if te.eq_ignore_ascii_case("chunked") {
            return Ok(BodyFraming::Chunked);
        }
        return Err(HttpError::Malformed(format!("unsupported transfer encoding: {te}")));
    }
    let len = match headers.get("Content-Length") {
        Some(v) => parse_content_length(v)?,
        None => 0,
    };
    if len > limit {
        return Err(HttpError::BodyTooLarge { limit });
    }
    Ok(BodyFraming::Length(len))
}

fn read_body<R: BufRead>(r: &mut R, headers: &Headers, limit: usize) -> HttpResult<Vec<u8>> {
    match body_framing(headers, limit)? {
        BodyFraming::Chunked => read_chunked(r, limit),
        BodyFraming::Length(len) => {
            let mut body = vec![0u8; len];
            std::io::Read::read_exact(r, &mut body).map_err(|_| HttpError::UnexpectedEof)?;
            Ok(body)
        }
    }
}

/// Server-side connection teardown decision for one exchange.
///
/// `Connection` is a comma-separated token list (`close, TE` is legal
/// and means close), so this must tokenize rather than compare the raw
/// value; HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close unless the
/// client opted in with `keep-alive`.
pub fn wants_close(version: Version, request_headers: &Headers) -> bool {
    if version.persistent_by_default() {
        request_headers.has_token("Connection", "close")
    } else {
        !request_headers.has_token("Connection", "keep-alive")
    }
}

/// Total budget for the trailer section after the last chunk. A single
/// shared budget, not per-line: a per-line allowance would let an
/// attacker stream trailers forever.
pub(crate) const TRAILER_LIMIT: usize = 4096;

/// Parse one chunk-size line (hex size, optional `;ext`), enforcing the
/// remaining-body limit *before* any allocation. The size is
/// attacker-controlled: `ffffffffffffffff` parses into a usize, so the
/// old `body_len + size` comparison overflowed — panic in debug, limit
/// bypass plus a huge `resize` in release.
pub(crate) fn parse_chunk_size(
    size_line: &str,
    body_len: usize,
    limit: usize,
) -> HttpResult<usize> {
    let size_str = size_line.split(';').next().unwrap_or("").trim();
    if size_str.is_empty() || size_str.len() > 16 {
        return Err(HttpError::Malformed(format!("bad chunk size: {size_line}")));
    }
    let size = usize::from_str_radix(size_str, 16)
        .map_err(|_| HttpError::Malformed(format!("bad chunk size: {size_line}")))?;
    match body_len.checked_add(size) {
        Some(total) if total <= limit => Ok(size),
        _ => Err(HttpError::BodyTooLarge { limit }),
    }
}

fn read_chunked<R: BufRead>(r: &mut R, limit: usize) -> HttpResult<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let mut budget = 1024;
        let size_line = read_line(r, &mut budget)?;
        let size = parse_chunk_size(&size_line, body.len(), limit)?;
        if size == 0 {
            // Trailers (if any) up to the blank line, under one shared
            // budget for the whole section.
            let mut budget = TRAILER_LIMIT;
            loop {
                if read_line(r, &mut budget)?.is_empty() {
                    break;
                }
            }
            return Ok(body);
        }
        let start = body.len();
        body.resize(start + size, 0);
        std::io::Read::read_exact(r, &mut body[start..]).map_err(|_| HttpError::UnexpectedEof)?;
        let mut crlf = [0u8; 2];
        std::io::Read::read_exact(r, &mut crlf).map_err(|_| HttpError::UnexpectedEof)?;
        if &crlf != b"\r\n" {
            return Err(HttpError::Malformed("missing CRLF after chunk".into()));
        }
    }
}

/// Read one request from `r` (e.g. a buffered TCP stream).
pub fn read_request<R: BufRead>(r: &mut R, body_limit: usize) -> HttpResult<Request> {
    read_request_versioned(r, body_limit).map(|(req, _)| req)
}

/// Read one request plus the protocol version from its request line.
/// Servers need the version for connection semantics: HTTP/1.0
/// defaults to close, HTTP/1.1 to keep-alive.
pub fn read_request_versioned<R: BufRead>(
    r: &mut R,
    body_limit: usize,
) -> HttpResult<(Request, Version)> {
    let mut budget = HEADER_LIMIT;
    let line = read_line(r, &mut budget)?;
    let mut parts = line.split_whitespace();
    let (m, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => return Err(HttpError::Malformed(format!("bad request line: {line}"))),
    };
    let version = Version::parse(version)
        .ok_or_else(|| HttpError::Malformed(format!("unsupported version: {version}")))?;
    let method =
        Method::parse(m).ok_or_else(|| HttpError::Malformed(format!("unknown method: {m}")))?;
    let headers = read_headers(r, &mut budget)?;
    let body = read_body(r, &headers, body_limit)?;
    Ok((Request { method, target: target.to_string(), headers, body }, version))
}

/// Parse a complete request head (request line + headers + terminating
/// blank line) from an in-memory buffer. The reactor accumulates bytes
/// until it sees the head terminator, then hands the whole section
/// here, so the line-oriented reader can never hit a mid-line EOF.
pub(crate) fn parse_request_head(head: &[u8]) -> HttpResult<(Method, String, Version, Headers)> {
    let mut r = std::io::Cursor::new(head);
    let mut budget = HEADER_LIMIT;
    let line = read_line(&mut r, &mut budget)?;
    let mut parts = line.split_whitespace();
    let (m, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => return Err(HttpError::Malformed(format!("bad request line: {line}"))),
    };
    let version = Version::parse(version)
        .ok_or_else(|| HttpError::Malformed(format!("unsupported version: {version}")))?;
    let method =
        Method::parse(m).ok_or_else(|| HttpError::Malformed(format!("unknown method: {m}")))?;
    let headers = read_headers(&mut r, &mut budget)?;
    Ok((method, target.to_string(), version, headers))
}

/// Read one response from `r`.
pub fn read_response<R: BufRead>(r: &mut R, body_limit: usize) -> HttpResult<Response> {
    read_response_versioned(r, body_limit).map(|(resp, _)| resp)
}

/// Read one response plus the protocol version from its status line.
/// Pooled clients need the version: an HTTP/1.0 response without
/// `Connection: keep-alive` must not be reused.
pub fn read_response_versioned<R: BufRead>(
    r: &mut R,
    body_limit: usize,
) -> HttpResult<(Response, Version)> {
    let mut budget = HEADER_LIMIT;
    let line = read_line(r, &mut budget)?;
    let mut parts = line.splitn(3, ' ');
    let (version, code) = match (parts.next(), parts.next()) {
        (Some(v), Some(c)) => (v, c),
        _ => return Err(HttpError::Malformed(format!("bad status line: {line}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported version: {version}")));
    }
    // Any "HTTP/1.x" other than 1.0 gets 1.1 connection semantics.
    let version = Version::parse(version).unwrap_or(Version::Http11);
    let status: u16 =
        code.parse().map_err(|_| HttpError::Malformed(format!("bad status: {code}")))?;
    let headers = read_headers(r, &mut budget)?;
    let body = read_body(r, &headers, body_limit)?;
    Ok((Response { status: Status(status), headers, body }, version))
}

/// How an outgoing body will be framed on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireFraming {
    /// `Content-Length` (written by the caller or auto-computed).
    Length,
    /// `Transfer-Encoding: chunked`: the caller set the header, so the
    /// body bytes must actually be chunk-encoded on the way out.
    Chunked,
}

/// Decide the framing for caller-supplied headers, refusing the
/// combinations a receiver could misread. Mirrors the read side: a
/// message carrying both `Content-Length` and `Transfer-Encoding` is
/// never emitted, so this stack cannot *produce* a smuggling-shaped
/// message any more than it accepts one.
fn outgoing_framing(headers: &Headers) -> HttpResult<WireFraming> {
    let Some(te) = headers.get("Transfer-Encoding") else {
        return Ok(WireFraming::Length);
    };
    if headers.contains("Content-Length") {
        return Err(HttpError::Malformed(
            "refusing to send both Content-Length and Transfer-Encoding".into(),
        ));
    }
    if te.eq_ignore_ascii_case("chunked") {
        Ok(WireFraming::Chunked)
    } else {
        Err(HttpError::Malformed(format!("unsupported outgoing transfer encoding: {te}")))
    }
}

/// Chunk size for write-side chunked encoding.
const WRITE_CHUNK_SIZE: usize = 8 * 1024;

fn write_body<W: Write>(w: &mut W, framing: WireFraming, body: &[u8]) -> HttpResult<()> {
    match framing {
        WireFraming::Length => w.write_all(body)?,
        WireFraming::Chunked => w.write_all(&encode_chunked(body, WRITE_CHUNK_SIZE))?,
    }
    w.flush()?;
    Ok(())
}

/// Serialize a request for the wire. Sets `Content-Length` (and `Host`
/// when given) if absent; a caller-set `Transfer-Encoding: chunked`
/// gets its body chunk-encoded rather than sent raw.
pub fn write_request<W: Write>(w: &mut W, req: &Request, host: Option<&str>) -> HttpResult<()> {
    let framing = outgoing_framing(&req.headers)?;
    write!(w, "{} {} HTTP/1.1\r\n", req.method, req.target)?;
    if let Some(h) = host {
        if !req.headers.contains("Host") {
            write!(w, "Host: {h}\r\n")?;
        }
    }
    let mut has_len = false;
    for (name, value) in req.headers.iter() {
        if name.eq_ignore_ascii_case("Content-Length") {
            has_len = true;
        }
        write!(w, "{name}: {value}\r\n")?;
    }
    if !has_len && framing == WireFraming::Length {
        write!(w, "Content-Length: {}\r\n", req.body.len())?;
    }
    write!(w, "\r\n")?;
    write_body(w, framing, &req.body)
}

/// Serialize a response for the wire. Framing rules match
/// [`write_request`].
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> HttpResult<()> {
    let framing = outgoing_framing(&resp.headers)?;
    write!(w, "HTTP/1.1 {} {}\r\n", resp.status.0, resp.status.reason())?;
    let mut has_len = false;
    for (name, value) in resp.headers.iter() {
        if name.eq_ignore_ascii_case("Content-Length") {
            has_len = true;
        }
        write!(w, "{name}: {value}\r\n")?;
    }
    if !has_len && framing == WireFraming::Length {
        write!(w, "Content-Length: {}\r\n", resp.body.len())?;
    }
    write!(w, "\r\n")?;
    write_body(w, framing, &resp.body)
}

/// Serialize a body as chunked transfer coding (used by tests and the
/// streaming bench).
pub fn encode_chunked(body: &[u8], chunk_size: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for chunk in body.chunks(chunk_size.max(1)) {
        out.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
        out.extend_from_slice(chunk);
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"0\r\n\r\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_req(raw: &[u8]) -> HttpResult<Request> {
        read_request(&mut BufReader::new(raw), DEFAULT_BODY_LIMIT)
    }

    fn parse_resp(raw: &[u8]) -> HttpResult<Response> {
        read_response(&mut BufReader::new(raw), DEFAULT_BODY_LIMIT)
    }

    #[test]
    fn request_round_trip() {
        let req = Request::post("/svc/echo?x=1", b"hello".to_vec())
            .with_header("Content-Type", "text/plain");
        let mut wire = Vec::new();
        write_request(&mut wire, &req, Some("example.com")).unwrap();
        let parsed = parse_req(&wire).unwrap();
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(parsed.target, "/svc/echo?x=1");
        assert_eq!(parsed.headers.get("Host"), Some("example.com"));
        assert_eq!(parsed.headers.get("content-type"), Some("text/plain"));
        assert_eq!(parsed.body, b"hello");
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::json("{\"a\":1}").with_header("X-Custom", "v");
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        let parsed = parse_resp(&wire).unwrap();
        assert_eq!(parsed.status, Status::OK);
        assert_eq!(parsed.headers.get("x-custom"), Some("v"));
        assert_eq!(parsed.body, b"{\"a\":1}");
    }

    #[test]
    fn parses_hand_written_request() {
        let raw = b"GET /index.html HTTP/1.1\r\nHost: h\r\n\r\n";
        let req = parse_req(raw).unwrap();
        assert_eq!(req.method, Method::Get);
        assert!(req.body.is_empty());
    }

    #[test]
    fn tolerates_bare_lf_lines() {
        let raw = b"GET / HTTP/1.1\nHost: h\n\n";
        assert!(parse_req(raw).is_ok());
    }

    #[test]
    fn chunked_body_decoding() {
        let mut raw = b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        raw.extend_from_slice(&encode_chunked(b"hello chunked world", 5));
        let req = parse_req(&raw).unwrap();
        assert_eq!(req.body, b"hello chunked world");
    }

    #[test]
    fn chunked_with_extension_and_trailer() {
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5;ext=1\r\nhello\r\n0\r\nX-Trailer: t\r\n\r\n";
        let req = parse_req(raw).unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_malformed_messages() {
        assert!(parse_req(b"").is_err());
        assert!(parse_req(b"GARBAGE\r\n\r\n").is_err());
        assert!(parse_req(b"BREW / HTTP/1.1\r\n\r\n").is_err());
        assert!(parse_req(b"GET / HTTP/2\r\n\r\n").is_err());
        assert!(parse_req(b"GET / HTTP/1.1\r\nBad Header Name: x\r\n\r\n").is_err());
        assert!(parse_req(b"GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n").is_err());
        assert!(parse_resp(b"HTTP/1.1 abc OK\r\n\r\n").is_err());
    }

    #[test]
    fn body_limit_enforced() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        let err = read_request(&mut BufReader::new(&raw[..]), 10).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { limit: 10 }));
    }

    #[test]
    fn chunked_body_limit_enforced() {
        let mut raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        raw.extend_from_slice(&encode_chunked(&[b'x'; 100], 10));
        let err = read_request(&mut BufReader::new(&raw[..]), 50).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { .. }));
    }

    #[test]
    fn truncated_body_is_eof() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(matches!(parse_req(raw), Err(HttpError::UnexpectedEof)));
    }

    #[test]
    fn content_length_must_be_plain_digits() {
        // `"+10".parse::<usize>()` succeeds, so a naive parser reads
        // these as valid lengths while a stricter peer rejects them —
        // the disagreement is the smuggling foothold.
        for cl in ["+10", "-0", " 1 0", "0x10", "10,10", ""] {
            let raw = format!("POST / HTTP/1.1\r\nContent-Length: {cl}\r\n\r\n0123456789");
            assert!(
                matches!(parse_req(raw.as_bytes()), Err(HttpError::Malformed(_))),
                "Content-Length {cl:?} must be rejected"
            );
        }
        // Surrounding whitespace alone is legal OWS.
        let raw = b"POST / HTTP/1.1\r\nContent-Length:  5 \r\n\r\nhello";
        assert_eq!(parse_req(raw).unwrap().body, b"hello");
    }

    #[test]
    fn both_framings_present_is_rejected() {
        let mut raw =
            b"POST / HTTP/1.1\r\nContent-Length: 5\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        raw.extend_from_slice(&encode_chunked(b"hello", 5));
        assert!(matches!(parse_req(&raw), Err(HttpError::Malformed(_))));

        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\nContent-Length: 5\r\n\r\n";
        assert!(matches!(parse_resp(raw), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn caller_set_chunked_is_actually_chunk_encoded() {
        let req = Request::post("/u", b"hello chunked world".to_vec())
            .with_header("Transfer-Encoding", "chunked");
        let mut wire = Vec::new();
        write_request(&mut wire, &req, None).unwrap();
        let text = String::from_utf8_lossy(&wire);
        assert!(!text.contains("Content-Length"), "chunked request must not carry a length");
        // The body on the wire is chunk-framed, and a compliant reader
        // recovers the original bytes.
        assert_eq!(parse_req(&wire).unwrap().body, b"hello chunked world");

        let resp = Response::text("streamed reply").with_header("Transfer-Encoding", "chunked");
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        assert_eq!(parse_resp(&wire).unwrap().body, b"streamed reply");
    }

    #[test]
    fn contradictory_outgoing_framing_is_refused() {
        let req = Request::post("/u", b"x".to_vec())
            .with_header("Transfer-Encoding", "chunked")
            .with_header("Content-Length", "1");
        assert!(write_request(&mut Vec::new(), &req, None).is_err());

        let gzip = Request::post("/u", b"x".to_vec()).with_header("Transfer-Encoding", "gzip");
        assert!(write_request(&mut Vec::new(), &gzip, None).is_err());

        let resp = Response::text("x")
            .with_header("Transfer-Encoding", "chunked")
            .with_header("Content-Length", "1");
        assert!(write_response(&mut Vec::new(), &resp).is_err());
    }

    #[test]
    fn huge_chunk_size_is_rejected_before_allocating() {
        // `ffffffffffffffff` is usize::MAX: the old `body_len + size`
        // check overflowed (debug panic / release limit bypass), and a
        // later `resize` would try to allocate the full claimed size.
        // The size must be rejected against the limit before any
        // allocation happens.
        for size in ["ffffffffffffffff", "fffffffffffffff0", "100000000"] {
            let raw = format!("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n{size}\r\n");
            let err = read_request(&mut BufReader::new(raw.as_bytes()), 1024).unwrap_err();
            assert!(
                matches!(err, HttpError::BodyTooLarge { limit: 1024 }),
                "chunk size {size} must hit the body limit, got {err:?}"
            );
        }
        // Sizes that do not even fit in a usize are malformed, not a
        // crash.
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n1ffffffffffffffff\r\n";
        assert!(matches!(parse_req(raw), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn accumulated_chunks_cannot_exceed_the_limit() {
        // Each chunk is small, but their sum crosses the limit: the
        // running total must be enforced, not just per-chunk size.
        let mut raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        for _ in 0..20 {
            raw.extend_from_slice(b"a\r\n0123456789\r\n");
        }
        raw.extend_from_slice(b"0\r\n\r\n");
        let err = read_request(&mut BufReader::new(&raw[..]), 64).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { limit: 64 }));
    }

    #[test]
    fn trailer_flood_is_bounded() {
        // The trailer section after the last chunk shares one budget;
        // without it an attacker could stream trailer lines forever.
        let mut raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n".to_vec();
        for i in 0..1000 {
            raw.extend_from_slice(format!("X-T{i}: {}\r\n", "v".repeat(64)).as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let err = parse_req(&raw).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "got {err:?}");

        // A modest trailer section still parses.
        let raw =
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\nX-T: v\r\n\r\n";
        assert_eq!(parse_req(raw).unwrap().body, b"abc");
    }

    #[test]
    fn eof_mid_line_is_unexpected_eof_not_a_parsed_message() {
        // A peer that dies mid-request-line used to yield the partial
        // bytes as a complete line; truncation must surface as EOF.
        for raw in [&b"GET / HTT"[..], b"GET / HTTP/1.1\r\nHost: h", b"G"] {
            assert!(
                matches!(parse_req(raw), Err(HttpError::UnexpectedEof)),
                "partial message {:?} must be UnexpectedEof",
                String::from_utf8_lossy(raw)
            );
        }
        // A cleanly-closed idle connection (zero bytes) is also EOF —
        // callers distinguish idle close from truncation by whether any
        // request was in flight.
        assert!(matches!(parse_req(b""), Err(HttpError::UnexpectedEof)));
    }

    #[test]
    fn connection_header_is_a_token_list() {
        let h = |v: &str| {
            let mut headers = Headers::new();
            headers.set("Connection", v);
            headers
        };
        // HTTP/1.1: keep-alive unless a `close` *token* appears.
        assert!(wants_close(Version::Http11, &h("close")));
        assert!(wants_close(Version::Http11, &h("close, TE")));
        assert!(wants_close(Version::Http11, &h("TE , Close")));
        assert!(!wants_close(Version::Http11, &h("keep-alive")));
        assert!(!wants_close(Version::Http11, &h("closet")), "prefix is not a token match");
        assert!(!wants_close(Version::Http11, &Headers::new()));
        // HTTP/1.0: close unless a `keep-alive` token appears.
        assert!(wants_close(Version::Http10, &Headers::new()));
        assert!(!wants_close(Version::Http10, &h("Keep-Alive")));
        assert!(!wants_close(Version::Http10, &h("TE, keep-alive")));
        // HTTP/1.1 with both tokens: `close` wins — the peer said it.
        assert!(wants_close(Version::Http11, &h("keep-alive, close")));
    }

    #[test]
    fn request_version_is_reported() {
        let reader = |raw: &[u8]| {
            read_request_versioned(&mut BufReader::new(raw), DEFAULT_BODY_LIMIT).unwrap().1
        };
        assert_eq!(reader(b"GET / HTTP/1.0\r\n\r\n"), Version::Http10);
        assert_eq!(reader(b"GET / HTTP/1.1\r\n\r\n"), Version::Http11);
    }

    #[test]
    fn binary_body_survives() {
        let body: Vec<u8> = (0..=255).collect();
        let req = Request::post("/bin", body.clone());
        let mut wire = Vec::new();
        write_request(&mut wire, &req, None).unwrap();
        assert_eq!(parse_req(&wire).unwrap().body, body);
    }
}
