//! Pinned elasticity chaos campaigns: partition a lease-fenced primary
//! from the registry mid-write-load, and join-then-SIGKILL a node
//! mid-hand-off, asserting the fencing / convergence / no-lost-write
//! invariants on both the mem and TCP transports.

use soc_chaos::elastic::{
    run_mem_fencing, run_mem_rebalance, run_tcp_rebalance, FencingConfig, RebalanceChaosConfig,
};

const VICTIM: &str = env!("CARGO_BIN_EXE_victim");

#[test]
fn partitioned_primary_fences_itself_and_cannot_be_obeyed() {
    let cfg = FencingConfig { seed: 0xFACE, ..FencingConfig::default() };
    let report = run_mem_fencing(&cfg).expect("campaign runs");
    assert_eq!(report.acked, cfg.keys * 3);
    assert!(report.violations().is_empty(), "violations: {:#?}", report);
}

#[test]
fn mem_join_with_kill_mid_handoff_converges_and_loses_nothing() {
    let cfg = RebalanceChaosConfig { seed: 0x5A1AD, ..RebalanceChaosConfig::default() };
    let report = run_mem_rebalance(&cfg).expect("campaign runs");
    assert_eq!(report.acked, cfg.keys * cfg.rounds);
    assert_eq!(report.restarts, 1, "the kill must actually land: {:#?}", report);
    assert!(report.violations().is_empty(), "violations: {:#?}", report);
}

#[test]
fn mem_clean_join_reaches_full_replication() {
    let cfg = RebalanceChaosConfig {
        seed: 0xADD1,
        kill_mid_handoff: false,
        ..RebalanceChaosConfig::default()
    };
    let report = run_mem_rebalance(&cfg).expect("campaign runs");
    assert!(report.violations().is_empty(), "violations: {:#?}", report);
}

#[test]
fn tcp_join_with_sigkill_mid_handoff_converges_and_loses_nothing() {
    let cfg = RebalanceChaosConfig { seed: 0x7C9, ..RebalanceChaosConfig::default() };
    let report = run_tcp_rebalance(VICTIM, &cfg).expect("campaign runs");
    assert_eq!(report.acked, cfg.keys * cfg.rounds);
    assert_eq!(report.restarts, 1, "the SIGKILL must actually land: {:#?}", report);
    assert!(report.violations().is_empty(), "violations: {:#?}", report);
}
