/root/repo/target/debug/deps/end_to_end-4028b32736a99a0d.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-4028b32736a99a0d: tests/end_to_end.rs

tests/end_to_end.rs:
