/root/repo/target/debug/deps/soc_workflow-bc0330cdc1170955.d: crates/soc-workflow/src/lib.rs crates/soc-workflow/src/activity.rs crates/soc-workflow/src/bpel.rs crates/soc-workflow/src/fsm.rs crates/soc-workflow/src/graph.rs

/root/repo/target/debug/deps/libsoc_workflow-bc0330cdc1170955.rlib: crates/soc-workflow/src/lib.rs crates/soc-workflow/src/activity.rs crates/soc-workflow/src/bpel.rs crates/soc-workflow/src/fsm.rs crates/soc-workflow/src/graph.rs

/root/repo/target/debug/deps/libsoc_workflow-bc0330cdc1170955.rmeta: crates/soc-workflow/src/lib.rs crates/soc-workflow/src/activity.rs crates/soc-workflow/src/bpel.rs crates/soc-workflow/src/fsm.rs crates/soc-workflow/src/graph.rs

crates/soc-workflow/src/lib.rs:
crates/soc-workflow/src/activity.rs:
crates/soc-workflow/src/bpel.rs:
crates/soc-workflow/src/fsm.rs:
crates/soc-workflow/src/graph.rs:
