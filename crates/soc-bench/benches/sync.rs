//! Synchronization primitive costs (CSE445 unit 2's "resource locking
//! versus unbreakable operations"): semaphore, events, spin lock,
//! OS mutex, and atomics, uncontended and contended, plus the bounded
//! buffer's producer/consumer throughput.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use soc_parallel::sync::{AutoResetEvent, BoundedBuffer, Semaphore, SenseBarrier, SpinLock};

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(150))
}

fn bench_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync");

    // Uncontended primitive costs.
    let sem = Semaphore::new(1);
    group.bench_function("semaphore/acquire_release", |b| {
        b.iter(|| {
            sem.acquire();
            sem.release();
        })
    });
    let spin = SpinLock::new(0u64);
    group.bench_function("spinlock/lock_unlock", |b| {
        b.iter(|| {
            *spin.lock() += 1;
        })
    });
    let mutex = std::sync::Mutex::new(0u64);
    group.bench_function("os_mutex/lock_unlock", |b| {
        b.iter(|| {
            *mutex.lock().unwrap() += 1;
        })
    });
    let atomic = AtomicU64::new(0);
    group.bench_function("atomic/fetch_add", |b| b.iter(|| atomic.fetch_add(1, Ordering::Relaxed)));
    let ev = AutoResetEvent::new(false);
    group.bench_function("auto_reset_event/set_wait", |b| {
        b.iter(|| {
            ev.set();
            ev.wait();
        })
    });

    // Contended counter: lock-based vs lock-free ("unbreakable").
    for threads in [2usize, 4] {
        group.bench_function(format!("contended_counter/spinlock_{threads}t"), |b| {
            b.iter(|| {
                let lock = Arc::new(SpinLock::new(0u64));
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let lock = lock.clone();
                        std::thread::spawn(move || {
                            for _ in 0..2_000 {
                                *lock.lock() += 1;
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            })
        });
        group.bench_function(format!("contended_counter/atomic_{threads}t"), |b| {
            b.iter(|| {
                let ctr = Arc::new(AtomicU64::new(0));
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let ctr = ctr.clone();
                        std::thread::spawn(move || {
                            for _ in 0..2_000 {
                                ctr.fetch_add(1, Ordering::Relaxed);
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            })
        });
    }

    // Producer/consumer transfer through the bounded buffer.
    group.bench_function("bounded_buffer/transfer_4k", |b| {
        b.iter(|| {
            let buf = Arc::new(BoundedBuffer::new(64));
            let tx = buf.clone();
            let producer = std::thread::spawn(move || {
                for i in 0..4_000u32 {
                    tx.put(i).unwrap();
                }
                tx.close();
            });
            let mut sum = 0u64;
            while let Some(v) = buf.take() {
                sum += v as u64;
            }
            producer.join().unwrap();
            sum
        })
    });

    // Barrier round cost.
    group.bench_function("barrier/round_2t", |b| {
        b.iter(|| {
            let bar = Arc::new(SenseBarrier::new(2));
            let b2 = bar.clone();
            let t = std::thread::spawn(move || {
                for _ in 0..100 {
                    b2.wait();
                }
            });
            for _ in 0..100 {
                bar.wait();
            }
            t.join().unwrap();
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_sync
}
criterion_main!(benches);
