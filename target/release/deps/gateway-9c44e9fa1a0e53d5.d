/root/repo/target/release/deps/gateway-9c44e9fa1a0e53d5.d: crates/soc-bench/benches/gateway.rs

/root/repo/target/release/deps/gateway-9c44e9fa1a0e53d5: crates/soc-bench/benches/gateway.rs

crates/soc-bench/benches/gateway.rs:
