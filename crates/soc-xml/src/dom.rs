//! Arena-backed DOM tree.
//!
//! Nodes live in a flat `Vec` owned by the [`Document`]; [`NodeId`]s are
//! indices into that arena. The tree is threaded with first/last-child
//! and next-sibling links (no per-node `Vec` of children), every text
//! payload is a [`Span`] into one shared byte arena, and element and
//! attribute names are interned [`Atom`]s — so a parsed document makes
//! O(distinct names) allocations for names, one arena `String` for all
//! character data, and one `Vec` each for nodes and attributes.
//!
//! Node payloads are exposed through [`Document::value`], which returns
//! a borrowed [`NodeValue`] view; the arena representation itself is
//! private so it can keep evolving.

use crate::error::{Position, XmlError, XmlResult};
use crate::intern::{Atom, NameInterner};
use crate::name::{qname_matches, QName};
use crate::reader::{ReaderConfig, XmlEvent, XmlReader};
use crate::writer::XmlWriter;

/// Index of a node within its owning [`Document`]. Ids are assigned in
/// creation order and never reused, so for parsed documents ascending id
/// order *is* document order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// A half-open range into the document's byte arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Span {
    start: u32,
    len: u32,
}

impl Span {
    fn get(self, bytes: &str) -> &str {
        &bytes[self.start as usize..(self.start + self.len) as usize]
    }
}

/// Internal node payload: atoms and spans, no owned strings.
#[derive(Debug, Clone, Copy)]
enum Payload {
    Element { name: Atom, attrs_start: u32, attrs_len: u32 },
    Text(Span),
    CData(Span),
    Comment(Span),
    Pi { target: Span, data: Span },
}

/// A node in the arena: payload plus sibling-threaded tree links.
#[derive(Debug, Clone, Copy)]
struct Node {
    payload: Payload,
    parent: Option<NodeId>,
    first_child: Option<NodeId>,
    last_child: Option<NodeId>,
    next_sibling: Option<NodeId>,
}

/// One attribute in the document-wide flat attribute table.
#[derive(Debug, Clone, Copy)]
struct AttrEntry {
    name: Atom,
    value: Span,
}

/// Borrowed view of a node's payload, as returned by [`Document::value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeValue<'d> {
    /// An element (attributes via [`Document::attributes`]).
    Element(&'d QName),
    /// Character data.
    Text(&'d str),
    /// A CDATA section (serialized back as CDATA).
    CData(&'d str),
    /// A comment.
    Comment(&'d str),
    /// A processing instruction.
    Pi {
        /// PI target.
        target: &'d str,
        /// PI data.
        data: &'d str,
    },
}

/// An XML document: an arena of nodes with a distinguished root element.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    attrs: Vec<AttrEntry>,
    names: NameInterner,
    bytes: String,
    root: NodeId,
}

impl Document {
    /// Create a document whose root element has the given name.
    pub fn new(root_name: impl Into<QName>) -> Self {
        let mut doc = Document {
            nodes: Vec::new(),
            attrs: Vec::new(),
            names: NameInterner::new(),
            bytes: String::new(),
            root: NodeId(0),
        };
        let atom = doc.names.intern_qname(&root_name.into());
        doc.alloc(None, Payload::Element { name: atom, attrs_start: 0, attrs_len: 0 });
        doc
    }

    /// Parse a document from a string, dropping whitespace-only text
    /// (use [`Document::parse_str_keep_whitespace`] to keep it).
    pub fn parse_str(input: &str) -> XmlResult<Self> {
        Self::parse_with(input, ReaderConfig { trim_whitespace_text: true, skip_comments: false })
    }

    /// Parse preserving whitespace-only text nodes.
    pub fn parse_str_keep_whitespace(input: &str) -> XmlResult<Self> {
        Self::parse_with(input, ReaderConfig::default())
    }

    fn parse_with(input: &str, config: ReaderConfig) -> XmlResult<Self> {
        let mut reader = XmlReader::with_config(input, config);
        let mut doc = Document {
            nodes: Vec::new(),
            attrs: Vec::new(),
            names: NameInterner::new(),
            // Character data is at most the input; reserve a fraction so
            // text-heavy documents don't regrow the arena repeatedly.
            bytes: String::with_capacity(input.len() / 2),
            root: NodeId(0),
        };
        let mut stack: Vec<NodeId> = Vec::new();
        let mut root: Option<NodeId> = None;

        loop {
            let ev = reader.next_event()?;
            match ev {
                XmlEvent::StartDocument { .. } | XmlEvent::Doctype(_) => {}
                XmlEvent::StartElement { name } => {
                    let atom = doc.names.intern(name.as_str());
                    let attrs_start = doc.attrs.len() as u32;
                    let mut attrs_len = 0u32;
                    for a in reader.attributes() {
                        let name = doc.names.intern(a.name.as_str());
                        let value = doc.span_of(&a.value);
                        doc.attrs.push(AttrEntry { name, value });
                        attrs_len += 1;
                    }
                    let parent = stack.last().copied();
                    let id =
                        doc.alloc(parent, Payload::Element { name: atom, attrs_start, attrs_len });
                    if parent.is_none() {
                        root = Some(id);
                    }
                    stack.push(id);
                }
                XmlEvent::EndElement { .. } => {
                    stack.pop();
                }
                XmlEvent::Text(t) => {
                    let span = doc.span_of(&t);
                    Self::push_leaf(&mut doc, &stack, Payload::Text(span))?;
                }
                XmlEvent::CData(t) => {
                    let span = doc.span_of(t);
                    Self::push_leaf(&mut doc, &stack, Payload::CData(span))?;
                }
                XmlEvent::Comment(t) => {
                    // Comments outside the root are legal; we drop them to
                    // keep the arena rooted at a single element.
                    if !stack.is_empty() {
                        let span = doc.span_of(t);
                        Self::push_leaf(&mut doc, &stack, Payload::Comment(span))?;
                    }
                }
                XmlEvent::ProcessingInstruction { target, data } => {
                    if !stack.is_empty() {
                        let target = doc.span_of(target);
                        let data = doc.span_of(data);
                        Self::push_leaf(&mut doc, &stack, Payload::Pi { target, data })?;
                    }
                }
                XmlEvent::EndDocument => break,
            }
        }

        doc.root = root.ok_or_else(|| XmlError::NotWellFormed {
            pos: Position::start(),
            detail: "no root element".into(),
        })?;
        Ok(doc)
    }

    fn push_leaf(doc: &mut Document, stack: &[NodeId], payload: Payload) -> XmlResult<()> {
        let &parent = stack.last().ok_or_else(|| XmlError::NotWellFormed {
            pos: Position::start(),
            detail: "content outside root".into(),
        })?;
        doc.alloc(Some(parent), payload);
        Ok(())
    }

    /// Copy `s` into the byte arena and return its span.
    fn span_of(&mut self, s: &str) -> Span {
        let start = u32::try_from(self.bytes.len()).expect("document text exceeds 4 GiB");
        self.bytes.push_str(s);
        Span { start, len: s.len() as u32 }
    }

    /// Push a node and link it as the last child of `parent`.
    fn alloc(&mut self, parent: Option<NodeId>, payload: Payload) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            payload,
            parent,
            first_child: None,
            last_child: None,
            next_sibling: None,
        });
        if let Some(p) = parent {
            match self.nodes[p.0].last_child {
                Some(last) => self.nodes[last.0].next_sibling = Some(id),
                None => self.nodes[p.0].first_child = Some(id),
            }
            self.nodes[p.0].last_child = Some(id);
        }
        id
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Borrowed view of a node's payload. Panics on an id from a
    /// *different* document (ids are never reused within one).
    pub fn value(&self, id: NodeId) -> NodeValue<'_> {
        match self.nodes[id.0].payload {
            Payload::Element { name, .. } => NodeValue::Element(self.names.resolve(name)),
            Payload::Text(s) => NodeValue::Text(s.get(&self.bytes)),
            Payload::CData(s) => NodeValue::CData(s.get(&self.bytes)),
            Payload::Comment(s) => NodeValue::Comment(s.get(&self.bytes)),
            Payload::Pi { target, data } => {
                NodeValue::Pi { target: target.get(&self.bytes), data: data.get(&self.bytes) }
            }
        }
    }

    /// True if `id` is an element node.
    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.0].payload, Payload::Element { .. })
    }

    /// Total number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document holds only the root element.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Element name, if `id` is an element.
    pub fn name(&self, id: NodeId) -> Option<&QName> {
        match self.nodes[id.0].payload {
            Payload::Element { name, .. } => Some(self.names.resolve(name)),
            _ => None,
        }
    }

    fn attr_range(&self, id: NodeId) -> &[AttrEntry] {
        match self.nodes[id.0].payload {
            Payload::Element { attrs_start, attrs_len, .. } => {
                &self.attrs[attrs_start as usize..(attrs_start + attrs_len) as usize]
            }
            _ => &[],
        }
    }

    /// Attribute value by name — matches either the full `prefix:local`
    /// form or the bare local part. No allocation.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attr_range(id)
            .iter()
            .find(|a| {
                let q = self.names.resolve(a.name);
                qname_matches(q, name) || q.local == name
            })
            .map(|a| a.value.get(&self.bytes))
    }

    /// All attributes of an element as `(name, value)` pairs in document
    /// order (empty for non-elements).
    pub fn attributes(&self, id: NodeId) -> impl Iterator<Item = (&QName, &str)> + '_ {
        self.attr_range(id).iter().map(|a| (self.names.resolve(a.name), a.value.get(&self.bytes)))
    }

    /// Children of `id` in document order.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children { doc: self, next: self.nodes[id.0].first_child }
    }

    /// Parent of `id`.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0].parent
    }

    /// Child *elements* of `id` in document order.
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id).filter(|&c| self.is_element(c))
    }

    /// First child element with the given local name.
    pub fn find_child(&self, id: NodeId, local: &str) -> Option<NodeId> {
        self.child_elements(id).find(|&c| self.name(c).is_some_and(|n| n.local == local))
    }

    /// All child elements with the given local name.
    pub fn find_children<'a>(
        &'a self,
        id: NodeId,
        local: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.child_elements(id).filter(move |&c| self.name(c).is_some_and(|n| n.local == local))
    }

    /// Concatenated text of all descendant text/CDATA nodes of `id`.
    pub fn text(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.descendants_iter(id) {
            match self.nodes[n.0].payload {
                Payload::Text(s) | Payload::CData(s) => out.push_str(s.get(&self.bytes)),
                _ => {}
            }
        }
        out
    }

    /// Text of the first child element named `local`, if present.
    /// The workhorse accessor for protocol decoding.
    pub fn child_text(&self, id: NodeId, local: &str) -> Option<String> {
        self.find_child(id, local).map(|c| self.text(c))
    }

    /// Depth-first pre-order traversal starting at `id` (inclusive),
    /// with no allocation: the iterator follows first-child links down
    /// and next-sibling/parent links back up.
    pub fn descendants_iter(&self, id: NodeId) -> Descendants<'_> {
        Descendants { doc: self, start: id, next: Some(id) }
    }

    /// Depth-first pre-order traversal starting at `id` (inclusive),
    /// materialized. Prefer [`Document::descendants_iter`] on hot paths.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        self.descendants_iter(id).collect()
    }

    /// Resolve a namespace prefix at `id` by walking `xmlns` declarations
    /// up the ancestor chain. An empty prefix resolves the default
    /// namespace.
    pub fn resolve_prefix(&self, id: NodeId, prefix: &str) -> Option<&str> {
        let mut cur = Some(id);
        while let Some(n) = cur {
            for a in self.attr_range(n) {
                if self.names.resolve(a.name).declared_prefix() == Some(prefix) {
                    return Some(a.value.get(&self.bytes));
                }
            }
            cur = self.nodes[n.0].parent;
        }
        match prefix {
            "xml" => Some("http://www.w3.org/XML/1998/namespace"),
            _ => None,
        }
    }

    /// Namespace URI of the element's own name.
    pub fn namespace(&self, id: NodeId) -> Option<&str> {
        let name = self.name(id)?;
        self.resolve_prefix(id, &name.prefix)
    }

    // ---- mutation -------------------------------------------------------

    /// Append a new child element to `parent`, returning its id.
    pub fn add_element(&mut self, parent: NodeId, name: impl Into<QName>) -> NodeId {
        let atom = self.names.intern_qname(&name.into());
        let attrs_start = self.attrs.len() as u32;
        self.alloc(Some(parent), Payload::Element { name: atom, attrs_start, attrs_len: 0 })
    }

    /// Append a text node to `parent`.
    pub fn add_text(&mut self, parent: NodeId, text: impl AsRef<str>) -> NodeId {
        let span = self.span_of(text.as_ref());
        self.alloc(Some(parent), Payload::Text(span))
    }

    /// Append a CDATA node to `parent`.
    pub fn add_cdata(&mut self, parent: NodeId, text: impl AsRef<str>) -> NodeId {
        let span = self.span_of(text.as_ref());
        self.alloc(Some(parent), Payload::CData(span))
    }

    /// Append a comment node to `parent`.
    pub fn add_comment(&mut self, parent: NodeId, text: impl AsRef<str>) -> NodeId {
        let span = self.span_of(text.as_ref());
        self.alloc(Some(parent), Payload::Comment(span))
    }

    /// Append a processing-instruction node to `parent`.
    pub fn add_pi(
        &mut self,
        parent: NodeId,
        target: impl AsRef<str>,
        data: impl AsRef<str>,
    ) -> NodeId {
        let target = self.span_of(target.as_ref());
        let data = self.span_of(data.as_ref());
        self.alloc(Some(parent), Payload::Pi { target, data })
    }

    /// Set (or replace) an attribute on an element. Panics if `id` is not
    /// an element.
    pub fn set_attr(&mut self, id: NodeId, name: impl Into<QName>, value: impl AsRef<str>) {
        let atom = self.names.intern_qname(&name.into());
        let value = self.span_of(value.as_ref());
        let (start, len) = match self.nodes[id.0].payload {
            Payload::Element { attrs_start, attrs_len, .. } => {
                (attrs_start as usize, attrs_len as usize)
            }
            _ => panic!("set_attr on a non-element node"),
        };
        if let Some(entry) = self.attrs[start..start + len].iter_mut().find(|a| a.name == atom) {
            entry.value = value;
            return;
        }
        let new_start = if start + len == self.attrs.len() {
            // This element owns the tail of the attribute table (the
            // common case: attributes are set right after add_element) —
            // extend in place.
            start
        } else {
            // Relocate the element's attributes to the tail. The old
            // entries stay behind as dead table rows; acceptable for the
            // build-then-serialize lifecycle these documents have.
            let new_start = self.attrs.len();
            self.attrs.extend_from_within(start..start + len);
            new_start
        };
        self.attrs.push(AttrEntry { name: atom, value });
        match &mut self.nodes[id.0].payload {
            Payload::Element { attrs_start, attrs_len, .. } => {
                *attrs_start = new_start as u32;
                *attrs_len = (len + 1) as u32;
            }
            _ => unreachable!(),
        }
    }

    /// Convenience: append `<name>text</name>` under `parent` and return
    /// the new element id.
    pub fn add_text_element(
        &mut self,
        parent: NodeId,
        name: impl Into<QName>,
        text: impl AsRef<str>,
    ) -> NodeId {
        let el = self.add_element(parent, name);
        self.add_text(el, text);
        el
    }

    /// Detach `id` from its parent. The node stays in the arena (ids are
    /// stable) but no longer appears in traversals.
    pub fn detach(&mut self, id: NodeId) {
        let Some(parent) = self.nodes[id.0].parent.take() else { return };
        let next = self.nodes[id.0].next_sibling.take();
        let mut prev: Option<NodeId> = None;
        let mut cur = self.nodes[parent.0].first_child;
        while let Some(c) = cur {
            if c == id {
                break;
            }
            prev = Some(c);
            cur = self.nodes[c.0].next_sibling;
        }
        match prev {
            Some(p) => self.nodes[p.0].next_sibling = next,
            None => self.nodes[parent.0].first_child = next,
        }
        if self.nodes[parent.0].last_child == Some(id) {
            self.nodes[parent.0].last_child = prev;
        }
    }

    /// Deep-copy the subtree rooted at `src_id` in `src` as a new child of
    /// `parent` in `self`. Returns the id of the copied root.
    pub fn graft(&mut self, parent: NodeId, src: &Document, src_id: NodeId) -> NodeId {
        let new_id = match src.value(src_id) {
            NodeValue::Element(name) => {
                let el = self.add_element(parent, name.clone());
                // Attributes go in immediately after add_element, so
                // set_attr stays on its in-place fast path.
                for (n, v) in src.attributes(src_id) {
                    self.set_attr(el, n.clone(), v);
                }
                el
            }
            NodeValue::Text(t) => self.add_text(parent, t),
            NodeValue::CData(t) => self.add_cdata(parent, t),
            NodeValue::Comment(t) => self.add_comment(parent, t),
            NodeValue::Pi { target, data } => self.add_pi(parent, target, data),
        };
        let mut child = src.nodes[src_id.0].first_child;
        while let Some(c) = child {
            self.graft(new_id, src, c);
            child = src.nodes[c.0].next_sibling;
        }
        new_id
    }

    // ---- serialization ---------------------------------------------------

    /// Serialize compactly (no added whitespace).
    pub fn to_xml(&self) -> String {
        let mut out = String::with_capacity(self.bytes.len() + self.nodes.len() * 8 + 16);
        self.write_xml_into(&mut out);
        out
    }

    /// Serialize compactly, appending to a caller-provided buffer (the
    /// reuse-friendly twin of [`Document::to_xml`]).
    pub fn write_xml_into(&self, out: &mut String) {
        let mut w = XmlWriter::compact_into(out);
        w.write_document(self);
        w.finish();
    }

    /// Serialize with two-space indentation.
    pub fn to_pretty_xml(&self) -> String {
        let mut out = String::with_capacity(self.bytes.len() + self.nodes.len() * 12 + 16);
        self.write_pretty_into(&mut out);
        out
    }

    /// Pretty-serialize, appending to a caller-provided buffer.
    pub fn write_pretty_into(&self, out: &mut String) {
        let mut w = XmlWriter::pretty_into(out);
        w.write_document(self);
        w.finish();
    }
}

/// Semantic tree equality: same element structure, names, attributes,
/// and character data, regardless of arena layout or interning order.
impl PartialEq for Document {
    fn eq(&self, other: &Self) -> bool {
        fn node_eq(a: &Document, an: NodeId, b: &Document, bn: NodeId) -> bool {
            if a.value(an) != b.value(bn) {
                return false;
            }
            if !a.attributes(an).eq(b.attributes(bn)) {
                return false;
            }
            let mut ca = a.children(an);
            let mut cb = b.children(bn);
            loop {
                match (ca.next(), cb.next()) {
                    (None, None) => return true,
                    (Some(x), Some(y)) => {
                        if !node_eq(a, x, b, y) {
                            return false;
                        }
                    }
                    _ => return false,
                }
            }
        }
        node_eq(self, self.root, other, other.root)
    }
}

impl std::fmt::Display for Document {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_xml())
    }
}

/// Iterator over a node's children (see [`Document::children`]).
#[derive(Clone)]
pub struct Children<'d> {
    doc: &'d Document,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.nodes[id.0].next_sibling;
        Some(id)
    }
}

/// Allocation-free pre-order traversal (see [`Document::descendants_iter`]).
#[derive(Clone)]
pub struct Descendants<'d> {
    doc: &'d Document,
    start: NodeId,
    next: Option<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        let node = &self.doc.nodes[cur.0];
        self.next = match node.first_child {
            Some(c) => Some(c),
            None => {
                // Climb until a next sibling exists, stopping at the
                // traversal root.
                let mut n = cur;
                loop {
                    if n == self.start {
                        break None;
                    }
                    if let Some(s) = self.doc.nodes[n.0].next_sibling {
                        break Some(s);
                    }
                    match self.doc.nodes[n.0].parent {
                        Some(p) => n = p,
                        None => break None,
                    }
                }
            }
        };
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_navigate() {
        let doc = Document::parse_str(
            "<catalog><service id='s1'><name>echo</name><cost>0</cost></service></catalog>",
        )
        .unwrap();
        let root = doc.root();
        assert_eq!(doc.name(root).unwrap().local, "catalog");
        let svc = doc.find_child(root, "service").unwrap();
        assert_eq!(doc.attr(svc, "id"), Some("s1"));
        assert_eq!(doc.child_text(svc, "name").as_deref(), Some("echo"));
        assert_eq!(doc.child_text(svc, "cost").as_deref(), Some("0"));
        assert_eq!(doc.child_text(svc, "missing"), None);
    }

    #[test]
    fn build_and_serialize() {
        let mut doc = Document::new("order");
        doc.set_attr(doc.root(), "id", "42");
        let item = doc.add_element(doc.root(), "item");
        doc.add_text(item, "book");
        assert_eq!(doc.to_xml(), r#"<order id="42"><item>book</item></order>"#);
    }

    #[test]
    fn round_trip_parse_serialize_parse() {
        let src = r#"<a x="1"><b>t &amp; u</b><c/><![CDATA[raw <stuff>]]></a>"#;
        let doc = Document::parse_str(src).unwrap();
        let ser = doc.to_xml();
        let doc2 = Document::parse_str(&ser).unwrap();
        assert_eq!(doc.text(doc.root()), doc2.text(doc2.root()));
        assert_eq!(ser, doc2.to_xml());
        assert_eq!(doc, doc2);
    }

    #[test]
    fn text_concatenates_descendants() {
        let doc = Document::parse_str("<p>Hello <b>brave</b> world</p>").unwrap();
        assert_eq!(doc.text(doc.root()), "Hello brave world");
    }

    #[test]
    fn descendants_in_document_order() {
        let doc = Document::parse_str("<a><b><c/></b><d/></a>").unwrap();
        let names: Vec<_> = doc
            .descendants(doc.root())
            .into_iter()
            .filter_map(|n| doc.name(n).map(|q| q.local.clone()))
            .collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn descendants_iter_stays_inside_subtree() {
        let doc = Document::parse_str("<a><b><c/><d/></b><e/></a>").unwrap();
        let b = doc.find_child(doc.root(), "b").unwrap();
        let names: Vec<_> =
            doc.descendants_iter(b).filter_map(|n| doc.name(n).map(|q| q.local.clone())).collect();
        assert_eq!(names, vec!["b", "c", "d"]);
    }

    #[test]
    fn namespace_resolution_walks_ancestors() {
        let doc = Document::parse_str(
            "<s:Envelope xmlns:s='http://schemas.xmlsoap.org/soap/envelope/' xmlns='urn:default'>\
             <s:Body><op/></s:Body></s:Envelope>",
        )
        .unwrap();
        let body = doc.find_child(doc.root(), "Body").unwrap();
        let op = doc.find_child(body, "op").unwrap();
        assert_eq!(doc.namespace(body), Some("http://schemas.xmlsoap.org/soap/envelope/"));
        assert_eq!(doc.namespace(op), Some("urn:default"));
        assert_eq!(doc.resolve_prefix(op, "nope"), None);
    }

    #[test]
    fn detach_removes_from_traversal() {
        let mut doc = Document::parse_str("<a><b/><c/></a>").unwrap();
        let b = doc.find_child(doc.root(), "b").unwrap();
        doc.detach(b);
        assert!(doc.find_child(doc.root(), "b").is_none());
        assert!(doc.find_child(doc.root(), "c").is_some());
    }

    #[test]
    fn detach_last_child_updates_links() {
        let mut doc = Document::parse_str("<a><b/><c/></a>").unwrap();
        let c = doc.find_child(doc.root(), "c").unwrap();
        doc.detach(c);
        assert_eq!(doc.children(doc.root()).count(), 1);
        let d = doc.add_element(doc.root(), "d");
        assert_eq!(doc.children(doc.root()).last(), Some(d));
        assert_eq!(doc.to_xml(), "<a><b/><d/></a>");
    }

    #[test]
    fn graft_copies_subtree_between_documents() {
        let src = Document::parse_str("<x><item id='1'><v>9</v></item></x>").unwrap();
        let item = src.find_child(src.root(), "item").unwrap();
        let mut dst = Document::new("basket");
        dst.graft(dst.root(), &src, item);
        assert_eq!(dst.to_xml(), r#"<basket><item id="1"><v>9</v></item></basket>"#);
    }

    #[test]
    fn set_attr_replaces_existing() {
        let mut doc = Document::new("a");
        doc.set_attr(doc.root(), "k", "1");
        doc.set_attr(doc.root(), "k", "2");
        assert_eq!(doc.attr(doc.root(), "k"), Some("2"));
        assert_eq!(doc.attributes(doc.root()).count(), 1);
    }

    #[test]
    fn set_attr_relocates_when_not_at_tail() {
        let mut doc = Document::new("a");
        doc.set_attr(doc.root(), "k", "1");
        let b = doc.add_element(doc.root(), "b");
        doc.set_attr(b, "x", "2");
        // Root's attribute range is no longer the table tail; adding a
        // second root attribute must relocate, not corrupt b's range.
        doc.set_attr(doc.root(), "m", "3");
        assert_eq!(doc.attr(doc.root(), "k"), Some("1"));
        assert_eq!(doc.attr(doc.root(), "m"), Some("3"));
        assert_eq!(doc.attr(b, "x"), Some("2"));
        assert_eq!(doc.to_xml(), r#"<a k="1" m="3"><b x="2"/></a>"#);
    }

    #[test]
    fn whitespace_dropped_by_default_kept_on_request() {
        let src = "<a>\n  <b/>\n</a>";
        let trimmed = Document::parse_str(src).unwrap();
        assert_eq!(trimmed.children(trimmed.root()).count(), 1);
        let kept = Document::parse_str_keep_whitespace(src).unwrap();
        assert_eq!(kept.children(kept.root()).count(), 3);
    }

    #[test]
    fn pretty_print_indents() {
        let doc = Document::parse_str("<a><b>t</b></a>").unwrap();
        let pretty = doc.to_pretty_xml();
        assert!(pretty.contains("\n  <b>"));
    }

    #[test]
    fn find_children_filters_by_name() {
        let doc = Document::parse_str("<a><i/><j/><i/></a>").unwrap();
        assert_eq!(doc.find_children(doc.root(), "i").count(), 2);
    }

    #[test]
    fn names_are_interned_once() {
        let doc = Document::parse_str("<r><x a='1'/><x a='2'/><x a='3'/></r>").unwrap();
        // r, x, a — three distinct names regardless of node count.
        assert_eq!(doc.names.len(), 3);
    }

    #[test]
    fn write_into_appends_after_existing_content() {
        let doc = Document::parse_str("<a><b>t</b></a>").unwrap();
        let mut buf = String::from("<?xml version=\"1.0\"?>");
        doc.write_xml_into(&mut buf);
        assert_eq!(buf, "<?xml version=\"1.0\"?><a><b>t</b></a>");
    }

    #[test]
    fn semantic_equality_ignores_arena_layout() {
        let a = Document::parse_str("<r><s k='1'>t</s></r>").unwrap();
        let mut b = Document::new("r");
        let s = b.add_element(b.root(), "s");
        b.set_attr(s, "k", "1");
        b.add_text(s, "t");
        assert_eq!(a, b);
        let c = Document::parse_str("<r><s k='2'>t</s></r>").unwrap();
        assert_ne!(a, c);
    }
}
