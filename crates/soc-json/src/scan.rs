//! Batched byte scanning for the parser and serializer hot loops.
//!
//! Same SWAR discipline as `soc_xml::scan` (8 bytes per iteration via
//! `u64` lane arithmetic, scalar tail), specialized to the three scans
//! JSON needs: string runs, digit runs, and whitespace. Kept local —
//! the JSON crate stands alone, it does not depend on the XML stack.
//!
//! Lane formulas are exact (no false positives): the low 7 bits are
//! isolated before any add so carries cannot cross lanes, and bytes
//! `>= 0x80` (UTF-8 continuation and lead bytes) never match, which is
//! what makes byte-level scanning safe on `str` content.

/// Low bit of every lane.
const LO: u64 = 0x0101_0101_0101_0101;
/// High bit of every lane.
const HI: u64 = 0x8080_8080_8080_8080;

#[inline(always)]
const fn broadcast(b: u8) -> u64 {
    (b as u64) * LO
}

#[inline(always)]
fn load(haystack: &[u8], at: usize) -> u64 {
    let chunk: [u8; 8] = haystack[at..at + 8].try_into().unwrap();
    u64::from_le_bytes(chunk)
}

/// High bit of each lane set iff that lane's byte is zero (exact).
#[inline(always)]
const fn zero_lanes(v: u64) -> u64 {
    !(((v & !HI) + !HI) | v) & HI
}

/// High bit of each lane set iff that lane's byte equals `needle`.
#[inline(always)]
const fn eq_lanes(v: u64, needle: u8) -> u64 {
    zero_lanes(v ^ broadcast(needle))
}

/// High bit of each lane set iff that lane's byte is `< limit`
/// (`limit` must be ASCII). Bytes `>= 0x80` never match: a set high
/// bit vetoes the lane directly.
#[inline(always)]
const fn lt_lanes(v: u64, limit: u8) -> u64 {
    !(((v & !HI) + broadcast(0x80 - limit)) | v) & HI
}

#[inline(always)]
const fn first_lane(mask: u64) -> usize {
    (mask.trailing_zeros() / 8) as usize
}

/// Offset of the first byte a JSON string run stops at: `"`, `\`, or a
/// control byte (`< 0x20`). `None` when the whole slice is plain.
///
/// This single primitive drives both directions of the wire: the
/// parser uses it to find the end of a string (and whether it can
/// borrow), the serializer to find the next character that needs
/// escaping.
#[inline]
pub fn string_special(haystack: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i + 8 <= haystack.len() {
        let w = load(haystack, i);
        let mask = eq_lanes(w, b'"') | eq_lanes(w, b'\\') | lt_lanes(w, 0x20);
        if mask != 0 {
            return Some(i + first_lane(mask));
        }
        i += 8;
    }
    haystack[i..].iter().position(|&b| b == b'"' || b == b'\\' || b < 0x20).map(|p| i + p)
}

/// Number of leading ASCII-digit bytes.
#[inline]
pub fn digit_run(haystack: &[u8]) -> usize {
    let mut i = 0;
    while i + 8 <= haystack.len() {
        let w = load(haystack, i);
        let digits = !lt_lanes(w, b'0') & lt_lanes(w, b'9' + 1) & HI;
        if digits == HI {
            i += 8;
            continue;
        }
        return i + first_lane(!digits & HI);
    }
    while i < haystack.len() && haystack[i].is_ascii_digit() {
        i += 1;
    }
    i
}

/// Number of leading JSON whitespace bytes (space, tab, CR, LF).
#[inline]
pub fn skip_whitespace(haystack: &[u8]) -> usize {
    // Between most tokens there is no whitespace at all in compact
    // documents; bail before the word loop spins up.
    if !haystack.first().is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n')) {
        return 0;
    }
    let mut i = 1;
    while i + 8 <= haystack.len() {
        let w = load(haystack, i);
        let ws = eq_lanes(w, b' ') | eq_lanes(w, b'\t') | eq_lanes(w, b'\r') | eq_lanes(w, b'\n');
        if ws == HI {
            i += 8;
            continue;
        }
        return i + first_lane(!ws & HI);
    }
    while i < haystack.len() && matches!(haystack[i], b' ' | b'\t' | b'\r' | b'\n') {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_string_special(h: &[u8]) -> Option<usize> {
        h.iter().position(|&b| b == b'"' || b == b'\\' || b < 0x20)
    }

    fn naive_digit_run(h: &[u8]) -> usize {
        h.iter().position(|b| !b.is_ascii_digit()).unwrap_or(h.len())
    }

    fn naive_skip_ws(h: &[u8]) -> usize {
        h.iter().position(|b| !matches!(b, b' ' | b'\t' | b'\r' | b'\n')).unwrap_or(h.len())
    }

    #[test]
    fn string_special_every_lane() {
        for needle in [b'"', b'\\', 0x00u8, 0x1F] {
            for lane in 0..24 {
                let mut buf = vec![b'a'; 24];
                buf[lane] = needle;
                assert_eq!(string_special(&buf), Some(lane), "byte {needle:#x} lane {lane}");
            }
        }
        assert_eq!(string_special(b"plain ascii text, long enough"), None);
    }

    #[test]
    fn high_bytes_are_plain() {
        // UTF-8 lead/continuation bytes must not look special.
        let buf: Vec<u8> = (0x80..=0xFFu8).collect();
        assert_eq!(string_special(&buf), None);
        assert_eq!(digit_run(&buf), 0);
        assert_eq!(skip_whitespace(&buf), 0);
    }

    #[test]
    fn digit_runs() {
        assert_eq!(digit_run(b"1234567890123x"), 13);
        assert_eq!(digit_run(b"12345678"), 8);
        assert_eq!(digit_run(b"x1"), 0);
        assert_eq!(digit_run(b""), 0);
        assert_eq!(digit_run(b"12/34"), 2); // '/' = 0x2F, just below '0'
        assert_eq!(digit_run(b"12:34"), 2); // ':' = 0x3A, just above '9'
    }

    #[test]
    fn whitespace_runs() {
        assert_eq!(skip_whitespace(b"   \t\r\n  x"), 8);
        assert_eq!(skip_whitespace(b"x  "), 0);
        assert_eq!(skip_whitespace(b"            "), 12);
    }

    #[test]
    fn agrees_with_naive_on_dense_byte_soup() {
        // Deterministic pseudo-random bytes exercising word/tail splits.
        let mut state = 0x9E37_79B9u32;
        let mut buf = Vec::new();
        for len in 0..64 {
            buf.clear();
            for _ in 0..len {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                buf.push((state >> 24) as u8);
            }
            assert_eq!(string_special(&buf), naive_string_special(&buf), "{buf:?}");
            assert_eq!(digit_run(&buf), naive_digit_run(&buf), "{buf:?}");
            assert_eq!(skip_whitespace(&buf), naive_skip_ws(&buf), "{buf:?}");
        }
    }
}
