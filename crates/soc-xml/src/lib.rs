//! # soc-xml — XML data representation and processing
//!
//! A from-scratch XML 1.0 (subset) processing stack covering the models
//! taught in CSE445 unit 4 of the paper: **SAX** (both pull and push
//! styles), **DOM**, an **XPath** subset, **schema validation**, and
//! serialization.
//!
//! The paper's course unit reads: *"This unit discusses XML and related
//! technologies ... XML data processing in SAX, DOM, and XPath models, XML
//! type definition and schema, XML validation, and XML Stylesheet
//! language."* Every one of those pieces has a module here.
//!
//! ## Quick tour
//!
//! ```
//! use soc_xml::{Document, xpath};
//!
//! let doc = Document::parse_str(
//!     "<catalog><service id='s1'><name>echo</name></service></catalog>").unwrap();
//! let names = xpath::eval("/catalog/service/name", &doc).unwrap();
//! assert_eq!(names.first_text(&doc).as_deref(), Some("echo"));
//! ```
//!
//! - [`reader`] — pull parser producing a stream of [`reader::XmlEvent`]s
//!   (the SAX data model).
//! - [`sax`] — push-style SAX driver over a user-supplied handler.
//! - [`dom`] — arena-backed DOM tree ([`Document`], [`NodeId`]).
//! - [`xpath`] — location-path subset with predicates.
//! - [`schema`] — element/attribute/occurrence validation.
//! - [`writer`] — streaming writer with optional pretty-printing.
//! - [`xslt`] — a tiny template-rule transformation engine in the spirit
//!   of XSL stylesheets.

pub mod dom;
pub mod error;
pub mod escape;
pub mod intern;
pub mod name;
pub mod reader;
pub mod sax;
pub mod scan;
pub mod schema;
pub mod writer;
pub mod xpath;
pub mod xslt;

pub use dom::{Document, NodeId, NodeValue};
pub use error::{XmlError, XmlResult};
pub use intern::{Atom, NameInterner};
pub use name::{QName, RawName};
pub use reader::{Attribute, OwnedEvent, XmlEvent, XmlReader};
pub use schema::{Schema, SchemaError};
pub use writer::XmlWriter;
pub use xpath::NodeSet;
