/root/repo/target/debug/deps/proptests-397c72c9bd767889.d: crates/soc-webapp/tests/proptests.rs

/root/repo/target/debug/deps/proptests-397c72c9bd767889: crates/soc-webapp/tests/proptests.rs

crates/soc-webapp/tests/proptests.rs:
