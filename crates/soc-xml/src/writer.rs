//! Streaming XML writer with compact and pretty modes.
//!
//! The writer is generic over its output sink: an owned `String`
//! ([`XmlWriter::compact`]), a caller-provided buffer that is appended
//! to and can be reused across serializations
//! ([`XmlWriter::compact_into`]), or any [`std::io::Write`] via
//! [`IoSink`]. Escaping goes through the zero-copy paths in
//! [`crate::escape`], and open-element names are stacked in one shared
//! scratch string — serializing a document performs no per-node
//! allocations.

use std::io;

use crate::dom::{Document, NodeId, NodeValue};
use crate::escape::{escape_attr, escape_text};
use crate::name::{QName, RawName};

/// Something the writer can emit bytes into.
pub trait XmlSink {
    /// Append a string slice.
    fn push_str(&mut self, s: &str);
    /// Append a single character.
    fn push(&mut self, c: char);
}

impl XmlSink for String {
    fn push_str(&mut self, s: &str) {
        String::push_str(self, s);
    }

    fn push(&mut self, c: char) {
        String::push(self, c);
    }
}

impl XmlSink for &mut String {
    fn push_str(&mut self, s: &str) {
        String::push_str(self, s);
    }

    fn push(&mut self, c: char) {
        String::push(self, c);
    }
}

/// Adapter turning any [`io::Write`] into an [`XmlSink`]. Write errors
/// are stashed and surfaced by [`IoSink::into_result`]; after the first
/// error further output is discarded.
pub struct IoSink<W: io::Write> {
    inner: W,
    error: Option<io::Error>,
}

impl<W: io::Write> IoSink<W> {
    /// Wrap a writer.
    pub fn new(inner: W) -> Self {
        IoSink { inner, error: None }
    }

    /// Unwrap, reporting the first write error if any occurred.
    pub fn into_result(self) -> io::Result<W> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.inner),
        }
    }
}

impl<W: io::Write> XmlSink for IoSink<W> {
    fn push_str(&mut self, s: &str) {
        if self.error.is_none() {
            if let Err(e) = self.inner.write_all(s.as_bytes()) {
                self.error = Some(e);
            }
        }
    }

    fn push(&mut self, c: char) {
        let mut buf = [0u8; 4];
        self.push_str(c.encode_utf8(&mut buf));
    }
}

/// A name the writer can emit: plain text, a [`QName`], or a borrowed
/// [`RawName`]. Keeps `start_element`/`attr` allocation-free for every
/// name representation in the crate.
pub trait XmlName {
    /// Append the serialized (`prefix:local`) form to `out`.
    fn append_to(&self, out: &mut String);
}

impl XmlName for &str {
    fn append_to(&self, out: &mut String) {
        out.push_str(self);
    }
}

impl XmlName for String {
    fn append_to(&self, out: &mut String) {
        out.push_str(self);
    }
}

impl XmlName for QName {
    fn append_to(&self, out: &mut String) {
        if !self.prefix.is_empty() {
            out.push_str(&self.prefix);
            out.push(':');
        }
        out.push_str(&self.local);
    }
}

impl XmlName for &QName {
    fn append_to(&self, out: &mut String) {
        (*self).append_to(out);
    }
}

impl XmlName for RawName<'_> {
    fn append_to(&self, out: &mut String) {
        out.push_str(self.as_str());
    }
}

/// Serializes XML either compactly or with indentation.
///
/// Can be used standalone as a streaming writer
/// ([`XmlWriter::start_element`] / [`XmlWriter::text`] /
/// [`XmlWriter::end_element`]) or to serialize a whole [`Document`].
pub struct XmlWriter<S: XmlSink = String> {
    out: S,
    indent: Option<&'static str>,
    depth: usize,
    /// Open element names, concatenated; offsets mark each name's start.
    /// One growable buffer instead of a `Vec<QName>` of clones.
    open_names: String,
    open_offsets: Vec<usize>,
    /// True right after a start tag with no content yet (enables `<x/>`).
    tag_open: bool,
    /// True if the current open element has child elements (for pretty
    /// closing-tag placement).
    had_children: Vec<bool>,
    /// True if the current open element holds text (suppresses indent).
    had_text: Vec<bool>,
    /// Whether anything has been emitted yet (drives pretty newlines;
    /// pre-existing buffer content counts).
    wrote_any: bool,
}

impl XmlWriter<String> {
    /// Writer that emits no insignificant whitespace into a new `String`.
    pub fn compact() -> Self {
        Self::compact_to(String::new())
    }

    /// Writer that indents nested elements by two spaces into a new
    /// `String`.
    pub fn pretty() -> Self {
        Self::pretty_to(String::new())
    }
}

impl<'b> XmlWriter<&'b mut String> {
    /// Compact writer appending to an existing buffer (reuse-friendly:
    /// clear the buffer between documents and keep its capacity).
    pub fn compact_into(out: &'b mut String) -> Self {
        let wrote_any = !out.is_empty();
        let mut w = Self::compact_to(out);
        w.wrote_any = wrote_any;
        w
    }

    /// Pretty writer appending to an existing buffer.
    pub fn pretty_into(out: &'b mut String) -> Self {
        let wrote_any = !out.is_empty();
        let mut w = Self::pretty_to(out);
        w.wrote_any = wrote_any;
        w
    }
}

impl<S: XmlSink> XmlWriter<S> {
    /// Compact writer over an arbitrary sink (e.g. [`IoSink`]).
    pub fn compact_to(out: S) -> Self {
        Self::with_indent(out, None)
    }

    /// Pretty writer over an arbitrary sink.
    pub fn pretty_to(out: S) -> Self {
        Self::with_indent(out, Some("  "))
    }

    fn with_indent(out: S, indent: Option<&'static str>) -> Self {
        XmlWriter {
            out,
            indent,
            depth: 0,
            open_names: String::new(),
            open_offsets: Vec::new(),
            tag_open: false,
            had_children: Vec::new(),
            had_text: Vec::new(),
            wrote_any: false,
        }
    }

    /// Write the `<?xml … ?>` declaration.
    pub fn declaration(&mut self) {
        self.out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if self.indent.is_some() {
            self.out.push('\n');
        }
        self.wrote_any = true;
    }

    fn close_pending_tag(&mut self) {
        if self.tag_open {
            self.out.push('>');
            self.tag_open = false;
        }
    }

    fn newline_indent(&mut self) {
        if let Some(ind) = self.indent {
            if self.wrote_any {
                self.out.push('\n');
            }
            for _ in 0..self.depth {
                self.out.push_str(ind);
            }
        }
    }

    /// Open an element. Attributes are added with [`XmlWriter::attr`]
    /// before any content is written.
    pub fn start_element(&mut self, name: impl XmlName) {
        self.close_pending_tag();
        if let Some(flag) = self.had_children.last_mut() {
            *flag = true;
        }
        // Never inject whitespace inside mixed content: it would change
        // the document's text value.
        if self.had_text.last() != Some(&true) {
            self.newline_indent();
        }
        let start = self.open_names.len();
        name.append_to(&mut self.open_names);
        self.open_offsets.push(start);
        self.out.push('<');
        self.out.push_str(&self.open_names[start..]);
        self.tag_open = true;
        self.wrote_any = true;
        self.depth += 1;
        self.had_children.push(false);
        self.had_text.push(false);
    }

    /// Add an attribute to the element opened by the most recent
    /// [`XmlWriter::start_element`]. Panics if content was already
    /// written.
    pub fn attr(&mut self, name: impl XmlName, value: &str) {
        assert!(self.tag_open, "attr() must directly follow start_element()");
        self.out.push(' ');
        // Use the tail of the name stack as scratch space for the
        // attribute name, then truncate it back off.
        let scratch = self.open_names.len();
        name.append_to(&mut self.open_names);
        self.out.push_str(&self.open_names[scratch..]);
        self.open_names.truncate(scratch);
        self.out.push_str("=\"");
        self.out.push_str(&escape_attr(value));
        self.out.push('"');
    }

    /// Write escaped character data. Empty text is a no-op so that
    /// serialization is a fixpoint (an empty text node is
    /// indistinguishable from no text node after reparsing).
    pub fn text(&mut self, text: &str) {
        if text.is_empty() {
            return;
        }
        self.close_pending_tag();
        if let Some(flag) = self.had_text.last_mut() {
            *flag = true;
        }
        self.out.push_str(&escape_text(text));
        self.wrote_any = true;
    }

    /// Write a CDATA section. `]]>` inside the payload is split across
    /// two sections, per the standard trick.
    pub fn cdata(&mut self, text: &str) {
        self.close_pending_tag();
        if let Some(flag) = self.had_text.last_mut() {
            *flag = true;
        }
        self.out.push_str("<![CDATA[");
        let mut rest = text;
        while let Some(i) = rest.find("]]>") {
            self.out.push_str(&rest[..i]);
            self.out.push_str("]]]]><![CDATA[>");
            rest = &rest[i + 3..];
        }
        self.out.push_str(rest);
        self.out.push_str("]]>");
        self.wrote_any = true;
    }

    /// Write a comment.
    pub fn comment(&mut self, text: &str) {
        self.close_pending_tag();
        self.newline_indent();
        self.out.push_str("<!--");
        self.out.push_str(text);
        self.out.push_str("-->");
        self.wrote_any = true;
    }

    /// Write a processing instruction.
    pub fn pi(&mut self, target: &str, data: &str) {
        self.close_pending_tag();
        self.newline_indent();
        self.out.push_str("<?");
        self.out.push_str(target);
        if !data.is_empty() {
            self.out.push(' ');
            self.out.push_str(data);
        }
        self.out.push_str("?>");
        self.wrote_any = true;
    }

    /// Close the most recently opened element.
    pub fn end_element(&mut self) {
        let start = self.open_offsets.pop().expect("end_element with no open element");
        self.depth -= 1;
        let had_children = self.had_children.pop().unwrap_or(false);
        let had_text = self.had_text.pop().unwrap_or(false);
        if self.tag_open {
            self.out.push_str("/>");
            self.tag_open = false;
            self.open_names.truncate(start);
            return;
        }
        if had_children && !had_text {
            self.newline_indent();
        }
        self.out.push_str("</");
        self.out.push_str(&self.open_names[start..]);
        self.out.push('>');
        self.open_names.truncate(start);
    }

    /// Convenience: `<name>text</name>`.
    pub fn text_element(&mut self, name: impl XmlName, text: &str) {
        self.start_element(name);
        self.text(text);
        self.end_element();
    }

    /// Serialize an entire document (root subtree).
    pub fn write_document(&mut self, doc: &Document) {
        self.write_node(doc, doc.root());
    }

    /// Serialize the subtree rooted at `id`.
    pub fn write_node(&mut self, doc: &Document, id: NodeId) {
        match doc.value(id) {
            NodeValue::Element(name) => {
                self.start_element(name);
                for (n, v) in doc.attributes(id) {
                    self.attr(n, v);
                }
                // Mixed content (any text child) disables indentation for
                // the whole element so its text value is preserved.
                let mixed = doc.children(id).any(|c| match doc.value(c) {
                    NodeValue::Text(t) => !t.is_empty(),
                    NodeValue::CData(_) => true,
                    _ => false,
                });
                if mixed {
                    if let Some(flag) = self.had_text.last_mut() {
                        *flag = true;
                    }
                }
                for c in doc.children(id) {
                    self.write_node(doc, c);
                }
                self.end_element();
            }
            NodeValue::Text(t) => self.text(t),
            NodeValue::CData(t) => self.cdata(t),
            NodeValue::Comment(t) => self.comment(t),
            NodeValue::Pi { target, data } => self.pi(target, data),
        }
    }

    /// Consume the writer, returning the sink. Panics if elements remain
    /// open.
    pub fn finish(self) -> S {
        assert!(
            self.open_offsets.is_empty(),
            "finish() with {} unclosed elements",
            self.open_offsets.len()
        );
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Document;

    #[test]
    fn streaming_compact() {
        let mut w = XmlWriter::compact();
        w.start_element("svc");
        w.attr("id", "a<b");
        w.text_element("name", "echo & co");
        w.end_element();
        assert_eq!(w.finish(), r#"<svc id="a&lt;b"><name>echo &amp; co</name></svc>"#);
    }

    #[test]
    fn empty_element_self_closes() {
        let mut w = XmlWriter::compact();
        w.start_element("a");
        w.end_element();
        assert_eq!(w.finish(), "<a/>");
    }

    #[test]
    fn pretty_indents_nested_elements() {
        let mut w = XmlWriter::pretty();
        w.start_element("a");
        w.start_element("b");
        w.text("t");
        w.end_element();
        w.end_element();
        assert_eq!(w.finish(), "<a>\n  <b>t</b>\n</a>");
    }

    #[test]
    fn cdata_escape_trick() {
        let mut w = XmlWriter::compact();
        w.start_element("a");
        w.cdata("x]]>y");
        w.end_element();
        let s = w.finish();
        assert_eq!(s, "<a><![CDATA[x]]]]><![CDATA[>y]]></a>");
        // And it parses back to the original text.
        let doc = Document::parse_str(&s).unwrap();
        assert_eq!(doc.text(doc.root()), "x]]>y");
    }

    #[test]
    fn declaration_prefix() {
        let mut w = XmlWriter::compact();
        w.declaration();
        w.start_element("a");
        w.end_element();
        assert!(w.finish().starts_with("<?xml version=\"1.0\""));
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_panics_on_open_elements() {
        let mut w = XmlWriter::compact();
        w.start_element("a");
        let _ = w.finish();
    }

    #[test]
    fn mixed_content_keeps_text_inline() {
        let doc = Document::parse_str("<p>Hello <b>x</b>!</p>").unwrap();
        let mut w = XmlWriter::pretty();
        w.write_document(&doc);
        let s = w.finish();
        // Text-bearing elements must not gain stray whitespace.
        let doc2 = Document::parse_str_keep_whitespace(&s).unwrap();
        assert_eq!(doc2.text(doc2.root()), "Hello x!");
    }

    #[test]
    fn reused_buffer_appends_and_keeps_capacity() {
        let mut buf = String::new();
        for i in 0..3 {
            buf.clear();
            let mut w = XmlWriter::compact_into(&mut buf);
            w.start_element("n");
            w.text(if i == 0 { "first" } else { "later" });
            w.end_element();
            w.finish();
        }
        assert_eq!(buf, "<n>later</n>");
    }

    #[test]
    fn into_writer_counts_existing_content_for_pretty() {
        let mut buf = String::from("<?xml version=\"1.0\"?>");
        let mut w = XmlWriter::pretty_into(&mut buf);
        w.start_element("a");
        w.end_element();
        w.finish();
        assert_eq!(buf, "<?xml version=\"1.0\"?>\n<a/>");
    }

    #[test]
    fn io_sink_writes_and_reports_errors() {
        let mut w = XmlWriter::compact_to(IoSink::new(Vec::new()));
        w.start_element("a");
        w.attr("k", "v");
        w.text("x");
        w.end_element();
        let bytes = w.finish().into_result().unwrap();
        assert_eq!(bytes, br#"<a k="v">x</a>"#);
    }

    #[test]
    fn prefixed_names_via_qname_and_str() {
        let mut w = XmlWriter::compact();
        w.start_element(QName::prefixed("s", "Envelope"));
        w.attr("xmlns:s", "urn:x");
        w.end_element();
        assert_eq!(w.finish(), r#"<s:Envelope xmlns:s="urn:x"/>"#);
    }
}
