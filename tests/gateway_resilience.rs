//! Resilience of the service gateway under injected faults.
//!
//! The paper's Section V services live in a world where "services are
//! too slow ... often offline or removed without notice". These tests
//! replicate a service three ways behind the gateway, inject the
//! paper's fault model (drops, delays, 5xx), and check the
//! dependability claims: high client-visible success despite 20%
//! upstream faults, circuit breakers that open and recover, deadlines
//! that bound slow calls, and a token bucket whose invariants hold for
//! arbitrary admission timelines.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use soc::gateway::{BreakerConfig, BreakerState, Gateway, GatewayConfig, TokenBucket};
use soc::prelude::*;

fn quick() -> GatewayConfig {
    GatewayConfig {
        base_backoff: Duration::from_micros(200),
        max_backoff: Duration::from_millis(2),
        request_deadline: Duration::from_secs(5),
        ..GatewayConfig::default()
    }
}

/// Three replicas, each dropping every 5th request (20% injected
/// faults): the gateway's retries must keep client-visible success at
/// 99% or better.
#[test]
fn twenty_percent_faults_are_masked_by_retries() {
    let net = MemNetwork::new();
    for name in ["quote-0", "quote-1", "quote-2"] {
        net.host(name, |req: Request| Response::text(format!("quote for {}", req.path())));
        net.set_fault(name, FaultConfig { fail_every: 5, ..Default::default() });
    }
    let gw = Gateway::new(Arc::new(net.clone()), quick());
    gw.register("quote", &["mem://quote-0", "mem://quote-1", "mem://quote-2"]);
    net.host("gw", gw.clone());

    let total = 300;
    let mut successes = 0;
    for i in 0..total {
        let resp = net.send(Request::get(format!("mem://gw/svc/quote/q/{i}"))).unwrap();
        if resp.status.is_success() {
            successes += 1;
        }
    }
    assert!(
        successes * 100 >= total * 99,
        "only {successes}/{total} requests succeeded through the gateway"
    );

    // The 20% upstream faults really happened and really were retried.
    let stats = gw.stats();
    let failures: u64 = ["mem://quote-0", "mem://quote-1", "mem://quote-2"]
        .iter()
        .map(|ep| stats.upstream(ep).failures.load(Ordering::Relaxed))
        .sum();
    let retries: u64 = ["mem://quote-0", "mem://quote-1", "mem://quote-2"]
        .iter()
        .map(|ep| stats.upstream(ep).retries.load(Ordering::Relaxed))
        .sum();
    assert!(failures >= 50, "fault injection misfired: only {failures} upstream failures");
    // Every upstream failure is answered by a retry — or was itself a
    // hedge arm, which is never retried (the racing arm covers it).
    let hedges = gw.stats().hedges_launched.load(Ordering::Relaxed);
    assert!(
        retries + hedges >= failures,
        "each upstream failure should have triggered a retry (or been a hedge arm): \
         {retries} retries + {hedges} hedges < {failures} failures"
    );
}

/// The full breaker life cycle: a replica that starts failing hard gets
/// its breaker opened (traffic routes around it), and once the faults
/// stop the breaker half-opens after the cool-down and closes again on
/// successful probes.
#[test]
fn breaker_opens_half_opens_and_closes_again() {
    let net = MemNetwork::new();
    let failing = Arc::new(AtomicBool::new(true));
    let flag = failing.clone();
    net.host("sick", move |_req: Request| {
        if flag.load(Ordering::Relaxed) {
            Response::error(Status::INTERNAL_SERVER_ERROR, "wedged")
        } else {
            Response::text("recovered")
        }
    });
    net.host("well", |_req: Request| Response::text("steady"));

    let gw = Gateway::new(
        Arc::new(net.clone()),
        GatewayConfig {
            breaker: BreakerConfig {
                failure_threshold: 0.5,
                window: 6,
                min_samples: 4,
                cool_down: Duration::from_millis(50),
                half_open_probes: 2,
            },
            ..quick()
        },
    );
    gw.register("svc", &["mem://sick", "mem://well"]);
    net.host("gw", gw.clone());

    // Phase 1: the sick replica fails every request it sees. Clients
    // never notice — retries land on the healthy one — and the sick
    // replica's breaker opens.
    for _ in 0..30 {
        let resp = net.send(Request::get("mem://gw/svc/svc/x")).unwrap();
        assert!(resp.status.is_success(), "healthy replica must mask the sick one");
    }
    assert_eq!(gw.breaker_state("mem://sick"), Some(BreakerState::Open));

    // Phase 2: with the breaker open, the sick replica sees no traffic.
    let sick_hits = net.hits("sick");
    for _ in 0..10 {
        net.send(Request::get("mem://gw/svc/svc/x")).unwrap();
    }
    assert_eq!(net.hits("sick"), sick_hits, "open breaker must block all traffic");

    // Phase 3: the replica recovers; after the cool-down the breaker
    // half-opens, probes succeed, and it closes.
    failing.store(false, Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(70));
    assert_eq!(gw.breaker_state("mem://sick"), Some(BreakerState::HalfOpen));
    for _ in 0..10 {
        let resp = net.send(Request::get("mem://gw/svc/svc/x")).unwrap();
        assert!(resp.status.is_success());
    }
    assert_eq!(gw.breaker_state("mem://sick"), Some(BreakerState::Closed));
    assert!(net.hits("sick") > sick_hits, "a closed breaker readmits traffic");
}

/// A replica that is both slow and broken cannot stretch a request past
/// its deadline budget: the gateway answers 504 instead of grinding
/// through every retry.
#[test]
fn deadline_budget_bounds_slow_failing_upstreams() {
    let net = MemNetwork::new();
    net.host("tarpit", |_req: Request| Response::error(Status::SERVICE_UNAVAILABLE, "no"));
    net.set_fault(
        "tarpit",
        FaultConfig { latency: Duration::from_millis(30), ..Default::default() },
    );
    let gw = Gateway::new(
        Arc::new(net.clone()),
        GatewayConfig { max_retries: 20, request_deadline: Duration::from_millis(80), ..quick() },
    );
    gw.register("tar", &["mem://tarpit"]);

    let start = std::time::Instant::now();
    let resp = gw.call("tar", Request::get("/x"));
    assert_eq!(resp.status, Status::GATEWAY_TIMEOUT);
    assert!(start.elapsed() < Duration::from_secs(2), "deadline failed to bound the call");
    assert_eq!(gw.stats().deadline_exceeded.load(Ordering::Relaxed), 1);
}

proptest! {
    /// The bucket never holds (or grants) more than its burst capacity,
    /// no matter when requests arrive.
    #[test]
    fn token_bucket_never_exceeds_burst(
        capacity in 1.0f64..32.0,
        refill in 0.0f64..500.0,
        mut times in proptest::collection::vec(0u64..5_000_000_000u64, 1..64),
    ) {
        times.sort_unstable();
        let bucket = TokenBucket::new(capacity, refill);
        for t in times {
            prop_assert!(bucket.available_at(t) <= capacity + 1e-9);
            let _ = bucket.try_acquire_at(t);
            prop_assert!(bucket.available_at(t) <= capacity + 1e-9);
        }
    }

    /// Left alone, the bucket only ever gains tokens as time advances.
    #[test]
    fn token_bucket_refills_monotonically(
        capacity in 1.0f64..32.0,
        refill in 0.0f64..500.0,
        drain in 0usize..32,
        mut times in proptest::collection::vec(0u64..5_000_000_000u64, 2..64),
    ) {
        times.sort_unstable();
        let bucket = TokenBucket::new(capacity, refill);
        for _ in 0..drain {
            let _ = bucket.try_acquire_at(0);
        }
        let mut prev = bucket.available_at(0);
        for t in times {
            let now = bucket.available_at(t);
            prop_assert!(now + 1e-9 >= prev, "tokens shrank without an acquire: {prev} -> {now}");
            prev = now;
        }
    }

    /// Conservation: admissions over any timeline are bounded by the
    /// initial burst plus everything the refill rate could have added.
    #[test]
    fn token_bucket_admissions_are_bounded(
        capacity in 1.0f64..32.0,
        refill in 0.0f64..500.0,
        mut times in proptest::collection::vec(0u64..2_000_000_000u64, 1..128),
    ) {
        times.sort_unstable();
        let bucket = TokenBucket::new(capacity, refill);
        let last = *times.last().unwrap();
        let mut admitted = 0u64;
        for t in &times {
            if bucket.try_acquire_at(*t) {
                admitted += 1;
            }
        }
        let bound = capacity + refill * (last as f64 / 1e9) + 1e-6;
        prop_assert!(
            (admitted as f64) <= bound,
            "admitted {admitted} > burst+refill bound {bound}"
        );
    }
}
