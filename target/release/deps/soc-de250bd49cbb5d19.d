/root/repo/target/release/deps/soc-de250bd49cbb5d19.d: src/lib.rs

/root/repo/target/release/deps/libsoc-de250bd49cbb5d19.rlib: src/lib.rs

/root/repo/target/release/deps/libsoc-de250bd49cbb5d19.rmeta: src/lib.rs

src/lib.rs:
